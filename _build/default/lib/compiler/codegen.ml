(* Code generation: AST -> CompiledMethod heap objects.

   Like the Smalltalk-80 compiler, the common control-flow messages are
   inlined into conditional and unconditional jumps when their arguments
   are block literals: ifTrue:/ifFalse: (and the two-armed forms),
   and:/or:, whileTrue:/whileFalse: (unary and keyword), to:do: and
   to:by:do:.  The paper relies on this: the idle Process's
   [[true] whileTrue] compiles to bytecode that "neither looks up messages
   nor allocates memory".

   All block temporaries and parameters are allocated in the home
   (method) context's frame, Smalltalk-80 style; a block context's own
   frame holds only its evaluation stack. *)

exception Error of string

let max_frame_slots = 96

type scope = (string * int) list  (* name -> frame slot *)

type env = {
  u : Universe.t;
  cls : Oop.t;                   (* defining class (sentinel for doIts) *)
  ivars : string array;
  asm : Assembler.t;
  mutable scopes : scope list;   (* innermost first; last is method scope *)
  mutable ntemps : int;          (* frame temp slots allocated so far *)
  mutable literals : Oop.t list; (* reversed *)
  mutable nlits : int;
  mutable depth : int;
  mutable maxdepth : int;
  mutable has_blocks : bool;
}

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- emission with stack-depth tracking --- *)

let emit env op =
  Assembler.emit env.asm op;
  env.depth <- env.depth + Opcode.stack_effect op;
  if env.depth > env.maxdepth then env.maxdepth <- env.depth

let emit_jump env kind target =
  Assembler.emit_jump env.asm kind target;
  (match kind with
   | `If_true | `If_false -> env.depth <- env.depth - 1
   | `Jump -> ()
   | `Block _ ->
       env.depth <- env.depth + 1;
       if env.depth > env.maxdepth then env.maxdepth <- env.depth)

(* --- literals --- *)

let add_literal env (oop : Oop.t) =
  let rec find i = function
    | [] -> None
    | l :: _ when Oop.equal l oop -> Some (env.nlits - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 env.literals with
  | Some idx -> idx
  | None ->
      env.literals <- oop :: env.literals;
      env.nlits <- env.nlits + 1;
      env.nlits - 1

let rec literal_oop env (lit : Ast.literal) =
  let u = env.u in
  match lit with
  | Ast.Lit_int n -> Oop.of_small n
  | Ast.Lit_float f -> Universe.new_float_old u f
  | Ast.Lit_string s -> Universe.new_string u s
  | Ast.Lit_symbol s -> Universe.intern u s
  | Ast.Lit_char c -> Universe.char_oop u c
  | Ast.Lit_nil -> u.Universe.nil
  | Ast.Lit_true -> u.Universe.true_
  | Ast.Lit_false -> u.Universe.false_
  | Ast.Lit_array els ->
      Universe.new_array u (List.map (literal_oop env) els)

(* --- variable resolution --- *)

type binding =
  | Temp of int
  | Ivar of int
  | Global of int  (* literal index of the Association *)

let lookup_var env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest ->
        (match List.assoc_opt name scope with
         | Some slot -> Some (Temp slot)
         | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some b -> Some b
  | None ->
      let rec ivar i =
        if i >= Array.length env.ivars then None
        else if env.ivars.(i) = name then Some (Ivar i)
        else ivar (i + 1)
      in
      ivar 0

let resolve env name ~for_store =
  match lookup_var env name with
  | Some b -> b
  | None ->
      (* Capitalised names denote globals (classes, Transcript, Processor,
         ...), created on first reference so the kernel can be compiled in
         any order.  Lowercase undeclared names are programming errors. *)
      if name <> "" && name.[0] >= 'A' && name.[0] <= 'Z' then
        Global (add_literal env (Universe.global_assoc env.u name))
      else if for_store then error "undeclared variable %s" name
      else error "undeclared variable %s" name

let alloc_temp env name =
  let slot = env.ntemps in
  env.ntemps <- env.ntemps + 1;
  if env.ntemps > max_frame_slots then error "too many temporaries";
  (match env.scopes with
   | scope :: rest -> env.scopes <- ((name, slot) :: scope) :: rest
   | [] -> assert false);
  slot

let fresh_hidden env = alloc_temp env (Printf.sprintf "<hidden%d>" env.ntemps)

(* --- expressions --- *)

let is_nullary_block = function
  | Ast.Block { params = []; _ } -> true
  | _ -> false

let rec gen_expr env (e : Ast.expr) =
  match e with
  | Ast.Self | Ast.Super -> emit env Opcode.Push_receiver
  | Ast.Var name ->
      (match resolve env name ~for_store:false with
       | Temp slot -> emit env (Opcode.Push_temp slot)
       | Ivar i -> emit env (Opcode.Push_ivar i)
       | Global l -> emit env (Opcode.Push_global l))
  | Ast.Lit (Ast.Lit_nil) -> emit env Opcode.Push_nil
  | Ast.Lit (Ast.Lit_true) -> emit env Opcode.Push_true
  | Ast.Lit (Ast.Lit_false) -> emit env Opcode.Push_false
  | Ast.Lit (Ast.Lit_int n)
    when n > -(1 lsl 18) && n < 1 lsl 18 ->
      emit env (Opcode.Push_smallint n)
  | Ast.Lit lit ->
      emit env (Opcode.Push_literal (add_literal env (literal_oop env lit)))
  | Ast.Assign (name, value) ->
      gen_expr env value;
      (match resolve env name ~for_store:true with
       | Temp slot -> emit env (Opcode.Store_temp slot)
       | Ivar i -> emit env (Opcode.Store_ivar i)
       | Global l -> emit env (Opcode.Store_global l))
  | Ast.Message { receiver; selector; args } ->
      gen_message env ~receiver ~selector ~args
  | Ast.Cascade { receiver; messages } ->
      gen_expr env receiver;
      let rec go = function
        | [] -> assert false
        | [ (sel, args) ] -> gen_send env ~super:false ~selector:sel ~args
        | (sel, args) :: rest ->
            emit env Opcode.Dup;
            gen_send env ~super:false ~selector:sel ~args;
            emit env Opcode.Pop;
            go rest
      in
      go messages
  | Ast.Block _ as b -> gen_block_literal env b

(* An ordinary (non-inlined) send: receiver is already handled here. *)
and gen_send env ~super ~selector ~args =
  List.iter (gen_expr env) args;
  let sel_oop = Universe.intern env.u selector in
  let sel_lit = add_literal env sel_oop in
  let nargs = List.length args in
  if super then begin
    if Oop.equal env.cls Oop.sentinel then error "super outside a class";
    emit env (Opcode.Super_send { selector = sel_lit; nargs })
  end
  else emit env (Opcode.Send { selector = sel_lit; nargs })

(* A send whose arguments are already on the stack (inlined loops). *)
and emit_send_raw env ~selector ~nargs =
  let sel_lit = add_literal env (Universe.intern env.u selector) in
  emit env (Opcode.Send { selector = sel_lit; nargs })

and gen_message env ~receiver ~selector ~args =
  let inline_done = try_inline env ~receiver ~selector ~args in
  if not inline_done then begin
    let super = receiver = Ast.Super in
    gen_expr env receiver;
    gen_send env ~super ~selector ~args
  end

(* Generate a block literal: a Push_block instruction whose body follows
   inline.  Parameters and block temporaries get home-frame slots. *)
and gen_block_literal env = function
  | Ast.Block { params; temps; body } ->
      env.has_blocks <- true;
      let end_label = Assembler.new_label env.asm in
      env.scopes <- [] :: env.scopes;
      let arg_start = env.ntemps in
      List.iter (fun p -> ignore (alloc_temp env p)) params;
      List.iter (fun t -> ignore (alloc_temp env t)) temps;
      emit_jump env (`Block (List.length params, arg_start)) end_label;
      (* the block body runs on its own context's stack *)
      let saved_depth = env.depth in
      env.depth <- 0;
      gen_body env body ~value:`Block_value;
      env.depth <- saved_depth;
      env.scopes <- List.tl env.scopes;
      Assembler.place_label env.asm end_label
  | _ -> assert false

(* Statement sequences.  [`Pop_all] discards every statement's value
   (inlined loop bodies); [`Last_value] leaves the last statement's value
   on the stack (inlined conditional arms); [`Block_value] is [`Last_value]
   terminated by a Block_return; [`Method] pops everything and relies on
   the caller to emit the fall-through return. *)
and gen_body env body ~value =
  let emit_return_stmt e =
    gen_expr env e;
    emit env Opcode.Return_top
  in
  let rec go = function
    | [] ->
        (match value with
         | `Block_value ->
             emit env Opcode.Push_nil;
             emit env Opcode.Block_return
         | `Last_value -> emit env Opcode.Push_nil
         | `Pop_all | `Method -> ())
    | [ Ast.Expr e ] ->
        (match value with
         | `Block_value ->
             gen_expr env e;
             emit env Opcode.Block_return
         | `Last_value -> gen_expr env e
         | `Pop_all | `Method ->
             gen_expr env e;
             emit env Opcode.Pop)
    | [ Ast.Return e ] -> emit_return_stmt e
    | Ast.Return e :: _ -> emit_return_stmt e
    | Ast.Expr e :: rest ->
        gen_expr env e;
        emit env Opcode.Pop;
        go rest
  in
  go body

(* --- control-flow inlining --- *)

and gen_inline_body env block ~value =
  match block with
  | Ast.Block { params = []; temps; body } ->
      env.scopes <- [] :: env.scopes;
      List.iter (fun t -> ignore (alloc_temp env t)) temps;
      gen_body env body ~value;
      env.scopes <- List.tl env.scopes
  | _ -> assert false

and try_inline env ~receiver ~selector ~args =
  match (selector, args) with
  | "ifTrue:", [ b ] when is_nullary_block b ->
      gen_conditional env ~receiver ~when_:`True ~then_:(Some b) ~else_:None;
      true
  | "ifFalse:", [ b ] when is_nullary_block b ->
      gen_conditional env ~receiver ~when_:`False ~then_:(Some b) ~else_:None;
      true
  | "ifTrue:ifFalse:", [ t; f ] when is_nullary_block t && is_nullary_block f ->
      gen_conditional env ~receiver ~when_:`True ~then_:(Some t) ~else_:(Some f);
      true
  | "ifFalse:ifTrue:", [ f; t ] when is_nullary_block t && is_nullary_block f ->
      gen_conditional env ~receiver ~when_:`False ~then_:(Some f) ~else_:(Some t);
      true
  | "and:", [ b ] when is_nullary_block b ->
      gen_short_circuit env ~receiver ~arg:b ~kind:`And;
      true
  | "or:", [ b ] when is_nullary_block b ->
      gen_short_circuit env ~receiver ~arg:b ~kind:`Or;
      true
  | "whileTrue:", [ b ] when is_nullary_block receiver && is_nullary_block b ->
      gen_while env ~cond:receiver ~body:(Some b) ~until:`False;
      true
  | "whileFalse:", [ b ] when is_nullary_block receiver && is_nullary_block b ->
      gen_while env ~cond:receiver ~body:(Some b) ~until:`True;
      true
  | "whileTrue", [] when is_nullary_block receiver ->
      gen_while env ~cond:receiver ~body:None ~until:`False;
      true
  | "whileFalse", [] when is_nullary_block receiver ->
      gen_while env ~cond:receiver ~body:None ~until:`True;
      true
  | "to:do:", [ limit; (Ast.Block { params = [ _ ]; _ } as b) ] ->
      gen_to_do env ~start:receiver ~limit ~step:1 ~block:b;
      true
  | "to:by:do:",
    [ limit; Ast.Lit (Ast.Lit_int step);
      (Ast.Block { params = [ _ ]; _ } as b) ]
    when step <> 0 ->
      gen_to_do env ~start:receiver ~limit ~step ~block:b;
      true
  | _ -> false

and gen_conditional env ~receiver ~when_ ~then_ ~else_ =
  gen_expr env receiver;
  let else_label = Assembler.new_label env.asm in
  let end_label = Assembler.new_label env.asm in
  (match when_ with
   | `True -> emit_jump env `If_false else_label
   | `False -> emit_jump env `If_true else_label);
  let depth0 = env.depth in
  (match then_ with
   | Some b -> gen_inline_body env b ~value:`Last_value
   | None -> emit env Opcode.Push_nil);
  emit_jump env `Jump end_label;
  env.depth <- depth0;
  Assembler.place_label env.asm else_label;
  (match else_ with
   | Some b -> gen_inline_body env b ~value:`Last_value
   | None -> emit env Opcode.Push_nil);
  Assembler.place_label env.asm end_label

and gen_short_circuit env ~receiver ~arg ~kind =
  gen_expr env receiver;
  let short_label = Assembler.new_label env.asm in
  let end_label = Assembler.new_label env.asm in
  (match kind with
   | `And -> emit_jump env `If_false short_label
   | `Or -> emit_jump env `If_true short_label);
  let depth0 = env.depth in
  gen_inline_body env arg ~value:`Last_value;
  emit_jump env `Jump end_label;
  env.depth <- depth0;
  Assembler.place_label env.asm short_label;
  (match kind with
   | `And -> emit env Opcode.Push_false
   | `Or -> emit env Opcode.Push_true);
  Assembler.place_label env.asm end_label

and gen_while env ~cond ~body ~until =
  let top_label = Assembler.new_label env.asm in
  let end_label = Assembler.new_label env.asm in
  Assembler.place_label env.asm top_label;
  gen_inline_body env cond ~value:`Last_value;
  (match until with
   | `False -> emit_jump env `If_false end_label
   | `True -> emit_jump env `If_true end_label);
  (match body with
   | Some b -> gen_inline_body env b ~value:`Pop_all
   | None -> ());
  emit_jump env `Jump top_label;
  Assembler.place_label env.asm end_label;
  emit env Opcode.Push_nil

and gen_to_do env ~start ~limit ~step ~block =
  match block with
  | Ast.Block { params = [ var ]; temps; body } ->
      env.scopes <- [] :: env.scopes;
      let var_slot = alloc_temp env var in
      List.iter (fun t -> ignore (alloc_temp env t)) temps;
      let limit_slot = fresh_hidden env in
      (* unlike Smalltalk-80, the inlined loop's value is nil rather than
         the receiver: the bytecode then stays purely sequential, which
         both the scavenger's restartable steps and the decompiler rely
         on (the value of a to:do: is essentially never used) *)
      gen_expr env start;
      emit env (Opcode.Store_temp var_slot);
      emit env Opcode.Pop;
      gen_expr env limit;
      emit env (Opcode.Store_temp limit_slot);
      emit env Opcode.Pop;
      let top_label = Assembler.new_label env.asm in
      let end_label = Assembler.new_label env.asm in
      Assembler.place_label env.asm top_label;
      emit env (Opcode.Push_temp var_slot);
      emit env (Opcode.Push_temp limit_slot);
      emit_send_raw env ~selector:(if step > 0 then "<=" else ">=") ~nargs:1;
      emit_jump env `If_false end_label;
      gen_body env body ~value:`Pop_all;
      emit env (Opcode.Push_temp var_slot);
      emit env (Opcode.Push_smallint step);
      emit_send_raw env ~selector:"+" ~nargs:1;
      emit env (Opcode.Store_temp var_slot);
      emit env Opcode.Pop;
      emit_jump env `Jump top_label;
      Assembler.place_label env.asm end_label;
      emit env Opcode.Push_nil;
      env.scopes <- List.tl env.scopes
  | _ -> assert false

(* --- methods --- *)

let compile_ast u ~cls ~ivars (m : Ast.meth) =
  let env = {
    u;
    cls;
    ivars;
    asm = Assembler.create ();
    scopes = [ [] ];
    ntemps = 0;
    literals = [];
    nlits = 0;
    depth = 0;
    maxdepth = 2;
    has_blocks = false;
  } in
  List.iter (fun p -> ignore (alloc_temp env p)) m.Ast.params;
  List.iter (fun t -> ignore (alloc_temp env t)) m.Ast.temps;
  gen_body env m.Ast.body ~value:`Method;
  emit env Opcode.Return_receiver;
  let code = Assembler.finish env.asm in
  let h = Universe.heap u in
  (* bytecodes as a raw words object *)
  let bc =
    Heap.alloc_old h ~slots:(Array.length code) ~raw:true
      ~cls:u.Universe.classes.Universe.array ()
  in
  Array.iteri (fun i w -> Heap.set_raw h bc i w) code;
  let nlits = env.nlits in
  let meth =
    Heap.alloc_old h ~slots:(Layout.Method.fixed_slots + nlits) ~raw:false
      ~cls:u.Universe.classes.Universe.compiled_method ()
  in
  let info =
    Layout.Minfo.make
      ~nargs:(List.length m.Ast.params)
      ~ntemps:env.ntemps
      ~maxstack:(env.maxdepth + 4)  (* headroom for interpreter pushes *)
      ~prim:(match m.Ast.primitive with Some n -> n | None -> 0)
      ~has_blocks:env.has_blocks
  in
  let set i v = ignore (Heap.store_ptr h meth i v) in
  set Layout.Method.info (Oop.of_small info);
  set Layout.Method.selector (Universe.intern u m.Ast.selector);
  set Layout.Method.bytecodes bc;
  set Layout.Method.source (Universe.new_string u m.Ast.source);
  set Layout.Method.defining_class
    (if Oop.equal cls Oop.sentinel then u.Universe.nil else cls);
  List.iteri
    (fun i lit -> set (Layout.Method.fixed_slots + i) lit)
    (List.rev env.literals);
  meth

(* Instance-variable names of [cls], inherited ones first, as the compiler
   environment.  Reads the ivar_names array stored in the class. *)
let class_ivars u cls =
  if Oop.equal cls Oop.sentinel then [||]
  else begin
    let h = Universe.heap u in
    let arr = Heap.get h cls Layout.Class.ivar_names in
    if Oop.equal arr u.Universe.nil then [||]
    else
      Array.init
        (Heap.slots h (Oop.addr arr))
        (fun i -> Heap.string_value h (Heap.get h arr i))
  end

let compile_method u ~cls source =
  let ast = Parser.parse_method source in
  compile_ast u ~cls ~ivars:(class_ivars u cls) ast

let compile_do_it u source =
  let ast = Parser.parse_do_it source in
  compile_ast u ~cls:Oop.sentinel ~ivars:[||] ast
