(** Code generation: AST -> CompiledMethod heap objects.

    Like the Smalltalk-80 compiler, the common control-flow messages are
    inlined into jumps when their arguments are block literals:
    [ifTrue:]/[ifFalse:] (and the two-armed forms), [and:]/[or:],
    [whileTrue:]/[whileFalse:] (unary and keyword), [to:do:] and
    [to:by:do:].  Block parameters and temporaries are allocated in the
    home context's frame, Smalltalk-80 style.

    Methods, their bytecode arrays, literals and source strings are
    allocated in old space: they are permanent image objects. *)

exception Error of string

val max_frame_slots : int

(** Compile a parsed method for [cls] ([Oop.sentinel] for receiverless
    doIts), resolving instance variables against [ivars]. *)
val compile_ast : Universe.t -> cls:Oop.t -> ivars:string array -> Ast.meth -> Oop.t

(** Instance-variable names of [cls], inherited first. *)
val class_ivars : Universe.t -> Oop.t -> string array

(** Parse and compile method source for [cls]. *)
val compile_method : Universe.t -> cls:Oop.t -> string -> Oop.t

(** Parse and compile an expression sequence as a [doIt] method on nil;
    the last expression's value is answered. *)
val compile_do_it : Universe.t -> string -> Oop.t
