(* Recursive-descent parser for Smalltalk-80 methods and expressions.

   Grammar (standard Smalltalk-80):

     method      ::= pattern pragma? temps? statements
     pattern     ::= unary-sel | binary-sel ident | (keyword ident)+
     pragma      ::= '<' 'primitive:' integer '>'
     temps       ::= '|' ident* '|'
     statements  ::= (statement '.')* ('^' expression '.'?)?
     expression  ::= ident ':=' expression | cascade
     cascade     ::= keyword-expr (';' message)*
     keyword     ::= binary (keyword-sel binary)*
     binary      ::= unary (binary-sel unary)*
     unary       ::= primary unary-sel*
     primary     ::= ident | literal | block | '(' expression ')'
     block       ::= '[' (':' ident)* '|'? temps? statements ']' *)

exception Error of string

type t = {
  toks : Lexer.token array;
  mutable pos : int;
}

let error p msg =
  raise
    (Error
       (Printf.sprintf "%s (at token %d: %s)" msg p.pos
          (Lexer.token_to_string p.toks.(min p.pos (Array.length p.toks - 1)))))

let peek p = p.toks.(p.pos)
let peek2 p =
  if p.pos + 1 < Array.length p.toks then p.toks.(p.pos + 1) else Lexer.Eof
let advance p = p.pos <- p.pos + 1
let next p = let t = peek p in advance p; t

let expect p tok what =
  if peek p = tok then advance p else error p ("expected " ^ what)

let ident p =
  match next p with
  | Lexer.Ident name -> name
  | _ -> p.pos <- p.pos - 1; error p "expected an identifier"

(* --- literals --- *)

let rec parse_array_literal p =
  (* after '#(' ; elements until ')' *)
  let rec go acc =
    match peek p with
    | Lexer.Rparen -> advance p; List.rev acc
    | Lexer.Eof -> error p "unterminated literal array"
    | _ -> go (parse_array_element p :: acc)
  in
  Ast.Lit_array (go [])

and parse_array_element p =
  match next p with
  | Lexer.Int n -> Ast.Lit_int n
  | Lexer.Float f -> Ast.Lit_float f
  | Lexer.Str s -> Ast.Lit_string s
  | Lexer.Char c -> Ast.Lit_char c
  | Lexer.Sym s -> Ast.Lit_symbol s
  | Lexer.Hash_paren | Lexer.Lparen -> parse_array_literal p
  | Lexer.Ident "nil" -> Ast.Lit_nil
  | Lexer.Ident "true" -> Ast.Lit_true
  | Lexer.Ident "false" -> Ast.Lit_false
  (* bare words and keywords inside #( ) denote symbols *)
  | Lexer.Ident s -> Ast.Lit_symbol s
  | Lexer.Keyword k ->
      (* glue consecutive keywords: #(at:put:) lexes as two tokens *)
      let buf = Buffer.create 16 in
      Buffer.add_string buf k;
      let rec glue () =
        match peek p with
        | Lexer.Keyword k2 -> advance p; Buffer.add_string buf k2; glue ()
        | _ -> ()
      in
      glue ();
      Ast.Lit_symbol (Buffer.contents buf)
  | Lexer.Binary s -> Ast.Lit_symbol s
  | Lexer.Lt -> Ast.Lit_symbol "<"
  | Lexer.Gt -> Ast.Lit_symbol ">"
  | Lexer.Assign | Lexer.Rparen | Lexer.Lbracket
  | Lexer.Rbracket | Lexer.Lbrace | Lexer.Rbrace | Lexer.Period | Lexer.Semi
  | Lexer.Caret | Lexer.Bar | Lexer.Colon | Lexer.Eof ->
      p.pos <- p.pos - 1;
      error p "bad element in literal array"

(* --- expressions --- *)

let rec parse_expression p =
  match (peek p, peek2 p) with
  | Lexer.Ident name, Lexer.Assign ->
      advance p; advance p;
      Ast.Assign (name, parse_expression p)
  | _ -> parse_cascade p

and parse_cascade p =
  let e = parse_keyword_expr p in
  if peek p <> Lexer.Semi then e
  else begin
    (* split the last message off [e]; its receiver anchors the cascade *)
    let receiver, first =
      match e with
      | Ast.Message { receiver; selector; args } -> (receiver, (selector, args))
      | _ -> error p "cascade must follow a message send"
    in
    let messages = ref [ first ] in
    while peek p = Lexer.Semi do
      advance p;
      messages := parse_cascade_message p :: !messages
    done;
    Ast.Cascade { receiver; messages = List.rev !messages }
  end

and parse_cascade_message p =
  (* one message without a receiver: unary, binary or keyword *)
  match peek p with
  | Lexer.Ident sel -> advance p; (sel, [])
  | Lexer.Keyword _ ->
      let parts = ref [] and args = ref [] in
      let rec go () =
        match peek p with
        | Lexer.Keyword k ->
            advance p;
            parts := k :: !parts;
            args := parse_binary_expr p :: !args;
            go ()
        | _ -> ()
      in
      go ();
      (String.concat "" (List.rev !parts), List.rev !args)
  | Lexer.Binary sel -> advance p; (sel, [ parse_unary_expr p ])
  | Lexer.Lt -> advance p; ("<", [ parse_unary_expr p ])
  | Lexer.Gt -> advance p; (">", [ parse_unary_expr p ])
  | Lexer.Bar -> advance p; ("|", [ parse_unary_expr p ])
  | _ -> error p "expected a message after ';'"

and parse_keyword_expr p =
  let receiver = parse_binary_expr p in
  match peek p with
  | Lexer.Keyword _ ->
      let parts = ref [] and args = ref [] in
      let rec go () =
        match peek p with
        | Lexer.Keyword k ->
            advance p;
            parts := k :: !parts;
            args := parse_binary_expr p :: !args;
            go ()
        | _ -> ()
      in
      go ();
      Ast.Message
        { receiver;
          selector = String.concat "" (List.rev !parts);
          args = List.rev !args }
  | _ -> receiver

and parse_binary_expr p =
  let rec go receiver =
    match peek p with
    | Lexer.Binary sel ->
        advance p;
        let arg = parse_unary_expr p in
        go (Ast.Message { receiver; selector = sel; args = [ arg ] })
    | Lexer.Lt ->
        advance p;
        let arg = parse_unary_expr p in
        go (Ast.Message { receiver; selector = "<"; args = [ arg ] })
    | Lexer.Gt ->
        advance p;
        let arg = parse_unary_expr p in
        go (Ast.Message { receiver; selector = ">"; args = [ arg ] })
    | Lexer.Bar ->
        (* '|' as a binary selector; unambiguous here because temporary
           declarations only occur before the first statement *)
        advance p;
        let arg = parse_unary_expr p in
        go (Ast.Message { receiver; selector = "|"; args = [ arg ] })
    | _ -> receiver
  in
  go (parse_unary_expr p)

and parse_unary_expr p =
  let rec go receiver =
    match peek p with
    | Lexer.Ident sel when peek2 p <> Lexer.Assign ->
        advance p;
        go (Ast.Message { receiver; selector = sel; args = [] })
    | _ -> receiver
  in
  go (parse_primary p)

and parse_primary p =
  match next p with
  | Lexer.Ident "self" -> Ast.Self
  | Lexer.Ident "super" -> Ast.Super
  | Lexer.Ident "nil" -> Ast.Lit Ast.Lit_nil
  | Lexer.Ident "true" -> Ast.Lit Ast.Lit_true
  | Lexer.Ident "false" -> Ast.Lit Ast.Lit_false
  | Lexer.Ident name -> Ast.Var name
  | Lexer.Int n -> Ast.Lit (Ast.Lit_int n)
  | Lexer.Float f -> Ast.Lit (Ast.Lit_float f)
  | Lexer.Str s -> Ast.Lit (Ast.Lit_string s)
  | Lexer.Char c -> Ast.Lit (Ast.Lit_char c)
  | Lexer.Sym s -> Ast.Lit (Ast.Lit_symbol s)
  | Lexer.Hash_paren -> Ast.Lit (parse_array_literal p)
  | Lexer.Binary "-" ->
      (* negative numeric literal: -5 *)
      (match next p with
       | Lexer.Int n -> Ast.Lit (Ast.Lit_int (-n))
       | Lexer.Float f -> Ast.Lit (Ast.Lit_float (-.f))
       | _ -> p.pos <- p.pos - 2; error p "'-' is not a unary operator")
  | Lexer.Lparen ->
      let e = parse_expression p in
      expect p Lexer.Rparen "')'";
      e
  | Lexer.Lbracket -> parse_block p
  | _ ->
      p.pos <- p.pos - 1;
      error p "expected an expression"

and parse_block p =
  let params = ref [] in
  while peek p = Lexer.Colon do
    advance p;
    params := ident p :: !params
  done;
  if !params <> [] then expect p Lexer.Bar "'|' after block parameters";
  let temps =
    if peek p = Lexer.Bar then begin
      advance p;
      let ts = ref [] in
      while (match peek p with Lexer.Ident _ -> true | _ -> false) do
        ts := ident p :: !ts
      done;
      expect p Lexer.Bar "'|' closing block temporaries";
      List.rev !ts
    end
    else []
  in
  let body = parse_statements p ~stop:Lexer.Rbracket in
  expect p Lexer.Rbracket "']'";
  Ast.Block { params = List.rev !params; temps; body }

and parse_statements p ~stop =
  let stmts = ref [] in
  let rec go () =
    if peek p = stop || peek p = Lexer.Eof then ()
    else if peek p = Lexer.Period then begin
      advance p; go ()  (* tolerate empty statements / trailing periods *)
    end
    else if peek p = Lexer.Caret then begin
      advance p;
      stmts := Ast.Return (parse_expression p) :: !stmts;
      (* optional trailing period(s) before the closer *)
      while peek p = Lexer.Period do advance p done;
      if peek p <> stop && peek p <> Lexer.Eof then
        error p "statements after a return"
    end
    else begin
      stmts := Ast.Expr (parse_expression p) :: !stmts;
      match peek p with
      | t when t = stop -> ()
      | Lexer.Eof -> ()
      | Lexer.Period -> advance p; go ()
      | _ -> error p "expected '.' between statements"
    end
  in
  go ();
  List.rev !stmts

(* --- methods --- *)

let parse_pattern p =
  match next p with
  | Lexer.Ident sel -> (sel, [])
  | Lexer.Binary sel -> (sel, [ ident p ])
  | Lexer.Lt -> ("<", [ ident p ])
  | Lexer.Gt -> (">", [ ident p ])
  | Lexer.Bar -> ("|", [ ident p ])
  | Lexer.Keyword _ ->
      p.pos <- p.pos - 1;
      let parts = ref [] and params = ref [] in
      let rec go () =
        match peek p with
        | Lexer.Keyword k ->
            advance p;
            parts := k :: !parts;
            params := ident p :: !params;
            go ()
        | _ -> ()
      in
      go ();
      (String.concat "" (List.rev !parts), List.rev !params)
  | _ -> p.pos <- p.pos - 1; error p "expected a method pattern"

let parse_pragma p =
  (* <primitive: N> *)
  if peek p = Lexer.Lt then begin
    advance p;
    match next p with
    | Lexer.Keyword "primitive:" ->
        (match next p with
         | Lexer.Int n ->
             expect p Lexer.Gt "'>' closing the pragma";
             Some n
         | _ -> error p "expected a primitive number")
    | _ -> error p "unknown pragma"
  end
  else None

let parse_temps p =
  if peek p = Lexer.Bar then begin
    advance p;
    let ts = ref [] in
    while (match peek p with Lexer.Ident _ -> true | _ -> false) do
      ts := ident p :: !ts
    done;
    expect p Lexer.Bar "'|' closing temporaries";
    List.rev !ts
  end
  else []

let parse_method source =
  let p = { toks = Lexer.tokenize source; pos = 0 } in
  let selector, params = parse_pattern p in
  let primitive = parse_pragma p in
  let temps = parse_temps p in
  let body = parse_statements p ~stop:Lexer.Eof in
  if peek p <> Lexer.Eof then error p "trailing tokens after method body";
  { Ast.selector; params; temps; primitive; body; source }

(* A free-standing expression sequence (a "doIt"), compiled as the body of
   a method on nil. *)
let parse_do_it source =
  let p = { toks = Lexer.tokenize source; pos = 0 } in
  let temps = parse_temps p in
  let body = parse_statements p ~stop:Lexer.Eof in
  (* a doIt answers its last expression *)
  let rec return_last = function
    | [] -> []
    | [ Ast.Expr e ] -> [ Ast.Return e ]
    | s :: rest -> s :: return_last rest
  in
  { Ast.selector = "doIt";
    params = [];
    temps;
    primitive = None;
    body = return_last body;
    source }
