(* The image definition format: a line-oriented container for class
   declarations and method chunks, playing the role of Smalltalk-80's
   "fileIn" chunk format.

     CLASS Point SUPER Object IVARS x y [FORMAT variable] [CATEGORY Kernel]
     METHODS Point
     <method source>
     !
     <method source>
     !
     CLASSMETHODS Point
     <method source>
     !

   Method chunks are terminated by a line containing only "!".  Everything
   else inside a chunk, including comments, belongs to the method source. *)

exception Error of string

type format = Pointers | Variable | Raw_words | Raw_bytes

type class_decl = {
  name : string;
  super : string option;       (* None only for Object *)
  ivars : string list;
  format : format;
  category : string;
}

type chunk_group = {
  class_name : string;
  class_side : bool;
  methods : string list;       (* method sources, in file order *)
}

type item =
  | Class_decl of class_decl
  | Methods of chunk_group

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let split_words line =
  String.split_on_char ' ' line
  |> List.filter (fun w -> w <> "")

let parse_class_line lineno words =
  let rec go decl = function
    | [] -> decl
    | "SUPER" :: s :: rest -> go { decl with super = Some s } rest
    | "IVARS" :: rest ->
        (* ivars run until the next directive keyword *)
        let is_kw w = List.mem w [ "FORMAT"; "CATEGORY"; "SUPER" ] in
        let rec take acc = function
          | w :: rest when not (is_kw w) -> take (w :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let ivars, rest = take [] rest in
        go { decl with ivars } rest
    | "FORMAT" :: f :: rest ->
        let format =
          match f with
          | "pointers" -> Pointers
          | "variable" -> Variable
          | "words" -> Raw_words
          | "bytes" -> Raw_bytes
          | other -> error "line %d: unknown format %s" lineno other
        in
        go { decl with format } rest
    | "CATEGORY" :: c :: rest -> go { decl with category = c } rest
    | w :: _ -> error "line %d: unexpected token %s in CLASS line" lineno w
  in
  match words with
  | name :: rest ->
      go { name; super = None; ivars = []; format = Pointers;
           category = "Kernel" }
        rest
  | [] -> error "line %d: CLASS needs a name" lineno

let parse source =
  let lines = String.split_on_char '\n' source in
  let items = ref [] in
  let current_group = ref None in
  let chunk = Buffer.create 256 in
  let flush_chunk () =
    let text = String.trim (Buffer.contents chunk) in
    Buffer.clear chunk;
    if text <> "" then
      match !current_group with
      | Some g -> g := { !(g) with methods = text :: !(g).methods }
      | None -> error "method chunk outside a METHODS section"
  in
  let close_group () =
    (match !current_group with
     | Some g ->
         if String.trim (Buffer.contents chunk) <> "" then flush_chunk ();
         Buffer.clear chunk;
         items := Methods { !(g) with methods = List.rev !(g).methods } :: !items
     | None -> ());
    current_group := None
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let trimmed = String.trim line in
      let words = split_words trimmed in
      match words with
      | "CLASS" :: rest ->
          close_group ();
          items := Class_decl (parse_class_line lineno rest) :: !items
      | [ "METHODS"; cls ] ->
          close_group ();
          current_group :=
            Some (ref { class_name = cls; class_side = false; methods = [] })
      | [ "CLASSMETHODS"; cls ] ->
          close_group ();
          current_group :=
            Some (ref { class_name = cls; class_side = true; methods = [] })
      | [ "!" ] -> flush_chunk ()
      | _ ->
          (match !current_group with
           | Some _ ->
               Buffer.add_string chunk line;
               Buffer.add_char chunk '\n'
           | None ->
               if trimmed <> "" && not (String.length trimmed >= 1 && trimmed.[0] = '#')
               then error "line %d: text outside any section: %s" lineno trimmed))
    lines;
  close_group ();
  List.rev !items
