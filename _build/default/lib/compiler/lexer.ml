(* Lexer for the Smalltalk-80 method language.

   Handled here: identifiers and keywords ([foo:]), binary selectors,
   integers (with radix, [16rFF]), floats, characters [$x], strings
   (['it''s']), symbols ([#foo:bar:], [#+]), literal-array openers [#(],
   assignment [:=], returns [^], cascades [;], comments ["..."].  The [!]
   character is reserved as the chunk terminator of the class-file format
   and never reaches the parser. *)

type token =
  | Ident of string
  | Keyword of string      (* trailing colon included: "at:" *)
  | Binary of string
  | Int of int
  | Float of float
  | Str of string
  | Char of char
  | Sym of string
  | Hash_paren             (* #( *)
  | Assign                 (* := *)
  | Lparen | Rparen
  | Lbracket | Rbracket
  | Lbrace | Rbrace
  | Period | Semi | Caret | Bar | Colon
  | Lt | Gt                (* also Binary, but pragmas need them distinct *)
  | Eof

exception Error of string

let token_to_string = function
  | Ident s -> s
  | Keyword s -> s
  | Binary s -> s
  | Int n -> string_of_int n
  | Float f -> string_of_float f
  | Str s -> "'" ^ s ^ "'"
  | Char c -> Printf.sprintf "$%c" c
  | Sym s -> "#" ^ s
  | Hash_paren -> "#("
  | Assign -> ":="
  | Lparen -> "(" | Rparen -> ")"
  | Lbracket -> "[" | Rbracket -> "]"
  | Lbrace -> "{" | Rbrace -> "}"
  | Period -> "." | Semi -> ";" | Caret -> "^" | Bar -> "|" | Colon -> ":"
  | Lt -> "<" | Gt -> ">"
  | Eof -> "<eof>"

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let make src = { src; pos = 0; line = 1 }

let error lx msg = raise (Error (Printf.sprintf "line %d: %s" lx.line msg))

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None
let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_letter c || is_digit c

(* Binary selector characters.  '|' is reserved for temp declarations and
   block parameter lists; '!' for chunk boundaries. *)
let is_binary_char c =
  match c with
  | '+' | '-' | '*' | '/' | '~' | '<' | '>' | '=' | '&' | '@' | '%' | ','
  | '?' | '\\' -> true
  | _ -> false

let rec skip_blank_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') -> advance lx; skip_blank_and_comments lx
  | Some '"' ->
      advance lx;
      let rec skip () =
        match peek_char lx with
        | None -> error lx "unterminated comment"
        | Some '"' -> advance lx
        | Some _ -> advance lx; skip ()
      in
      skip ();
      skip_blank_and_comments lx
  | Some _ | None -> ()

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  let name = String.sub lx.src start (lx.pos - start) in
  if peek_char lx = Some ':' && peek_char2 lx <> Some '=' then begin
    advance lx;
    Keyword (name ^ ":")
  end
  else Ident name

let digit_value c =
  if is_digit c then Char.code c - Char.code '0'
  else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
  else -1

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let int_part = int_of_string (String.sub lx.src start (lx.pos - start)) in
  match peek_char lx with
  | Some 'r' ->
      (* radix integer, e.g. 16rFF *)
      advance lx;
      let radix = int_part in
      if radix < 2 || radix > 36 then error lx "radix out of range";
      let v = ref 0 and seen = ref false in
      let rec go () =
        match peek_char lx with
        | Some c when digit_value c >= 0 && digit_value c < radix ->
            v := (!v * radix) + digit_value c;
            seen := true;
            advance lx;
            go ()
        | Some _ | None -> ()
      in
      go ();
      if not !seen then error lx "missing radix digits";
      Int !v
  | Some '.' when (match peek_char2 lx with Some c -> is_digit c | None -> false) ->
      advance lx; (* '.' *)
      let frac_start = lx.pos in
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      let exp =
        match peek_char lx with
        | Some 'e' ->
            advance lx;
            let neg =
              if peek_char lx = Some '-' then (advance lx; true) else false
            in
            let e_start = lx.pos in
            while (match peek_char lx with Some c -> is_digit c | None -> false) do
              advance lx
            done;
            if lx.pos = e_start then error lx "missing exponent digits";
            let e = int_of_string (String.sub lx.src e_start (lx.pos - e_start)) in
            if neg then -e else e
        | Some _ | None -> 0
      in
      let text =
        Printf.sprintf "%d.%se%d" int_part
          (String.sub lx.src frac_start (lx.pos - frac_start) |> fun s ->
           match String.index_opt s 'e' with
           | Some i -> String.sub s 0 i
           | None -> s)
          exp
      in
      Float (float_of_string text)
  | Some _ | None -> Int int_part

let lex_string lx =
  advance lx; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> error lx "unterminated string"
    | Some '\'' ->
        advance lx;
        if peek_char lx = Some '\'' then begin
          Buffer.add_char buf '\'';
          advance lx;
          go ()
        end
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Str (Buffer.contents buf)

let lex_symbol_body lx =
  match peek_char lx with
  | Some c when is_letter c ->
      (* possibly multi-keyword: #at:put: *)
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char lx with
        | Some c when is_ident_char c ->
            Buffer.add_char buf c; advance lx; go ()
        | Some ':' -> Buffer.add_char buf ':'; advance lx; go ()
        | Some _ | None -> ()
      in
      go ();
      Sym (Buffer.contents buf)
  | Some c when is_binary_char c || c = '|' ->
      let start = lx.pos in
      while (match peek_char lx with
             | Some c -> is_binary_char c || c = '|'
             | None -> false) do
        advance lx
      done;
      Sym (String.sub lx.src start (lx.pos - start))
  | Some '\'' ->
      (match lex_string lx with
       | Str s -> Sym s
       | _ -> assert false)
  | Some c -> error lx (Printf.sprintf "bad symbol start %c" c)
  | None -> error lx "symbol at end of input"

let next lx =
  skip_blank_and_comments lx;
  match peek_char lx with
  | None -> Eof
  | Some c when is_letter c -> lex_ident lx
  | Some c when is_digit c -> lex_number lx
  | Some '\'' -> lex_string lx
  | Some '$' ->
      advance lx;
      (match peek_char lx with
       | Some c -> advance lx; Char c
       | None -> error lx "character literal at end of input")
  | Some '#' ->
      advance lx;
      (match peek_char lx with
       | Some '(' -> advance lx; Hash_paren
       | Some _ -> lex_symbol_body lx
       | None -> error lx "symbol at end of input")
  | Some ':' when peek_char2 lx = Some '=' ->
      advance lx; advance lx; Assign
  | Some ':' -> advance lx; Colon
  | Some '(' -> advance lx; Lparen
  | Some ')' -> advance lx; Rparen
  | Some '[' -> advance lx; Lbracket
  | Some ']' -> advance lx; Rbracket
  | Some '{' -> advance lx; Lbrace
  | Some '}' -> advance lx; Rbrace
  | Some '.' -> advance lx; Period
  | Some ';' -> advance lx; Semi
  | Some '^' -> advance lx; Caret
  | Some '|' -> advance lx; Bar
  | Some c when is_binary_char c ->
      let start = lx.pos in
      advance lx;
      (* binary selectors are at most two characters *)
      (match peek_char lx with
       | Some c2 when is_binary_char c2 -> advance lx
       | Some _ | None -> ());
      let s = String.sub lx.src start (lx.pos - start) in
      if s = "<" then Lt else if s = ">" then Gt else Binary s
  | Some '!' -> error lx "'!' is reserved for chunk boundaries"
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

(* Tokenize the whole source; the parser works over the resulting array. *)
let tokenize src =
  let lx = make src in
  let rec go acc =
    match next lx with
    | Eof -> List.rev (Eof :: acc)
    | tok -> go (tok :: acc)
  in
  Array.of_list (go [])
