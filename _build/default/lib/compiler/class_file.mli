(** The image-definition format: a line-oriented container for class
    declarations and method chunks, playing the role of Smalltalk-80's
    "fileIn" chunk format.

    {v
    CLASS Point SUPER Object IVARS x y [FORMAT variable] [CATEGORY Kernel]
    METHODS Point
    <method source>
    !
    CLASSMETHODS Point
    <method source>
    !
    v}

    Method chunks end at a line containing only [!]. *)

exception Error of string

type format = Pointers | Variable | Raw_words | Raw_bytes

type class_decl = {
  name : string;
  super : string option;  (** [None] only for Object *)
  ivars : string list;
  format : format;
  category : string;
}

type chunk_group = {
  class_name : string;
  class_side : bool;
  methods : string list;  (** method sources, in file order *)
}

type item =
  | Class_decl of class_decl
  | Methods of chunk_group

val parse : string -> item list
