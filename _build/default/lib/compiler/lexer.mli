(** Lexer for the Smalltalk-80 method language: identifiers and keywords,
    binary selectors (two characters at most), integers with radix
    ([16rFF]), floats, characters ([$x]), strings with doubled-quote
    escapes, symbols ([#foo:bar:], [#+]), literal-array openers [#(],
    assignment [:=], and ["..."] comments.  [!] is reserved as the chunk
    terminator of the class-file format and never reaches the parser. *)

type token =
  | Ident of string
  | Keyword of string  (** trailing colon included: ["at:"] *)
  | Binary of string
  | Int of int
  | Float of float
  | Str of string
  | Char of char
  | Sym of string
  | Hash_paren  (** [#(] *)
  | Assign  (** [:=] *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Period
  | Semi
  | Caret
  | Bar
  | Colon
  | Lt  (** also a binary selector, but pragmas need it distinct *)
  | Gt
  | Eof

exception Error of string

val token_to_string : token -> string

(** Tokenize a whole source; ends with [Eof].
    @raise Error with a line number on malformed input. *)
val tokenize : string -> token array
