(** The VM side of Smalltalk Process scheduling.

    Smalltalk-80 scheduling is a priority queue examined whenever a
    Semaphore is signalled or a Process primitive runs; MS serializes it
    with one lock.  The MS reorganization is reproduced: a Process made
    active is {e not} removed from the ready queue — "the ready queue
    contains all Processes which are ready to run including those
    running" — and only the interpreter knows (via the [running_on] slot)
    whether a Process is running.  [keep_running_in_queue = false]
    restores the uniprocessor BS behaviour for the ablation.

    The ready queue itself is the ProcessorScheduler heap object: an
    Array of LinkedLists with Processes chained through their [next_link]
    slots, fully visible at the Smalltalk level — exactly the exposure the
    paper worries about. *)

type t = {
  u : Universe.t;
  lock : Spinlock.t;
  op_cycles : int;  (** cost of one ready-queue operation *)
  keep_running_in_queue : bool;
  processors : int;
  running : Oop.t array;  (** per processor: process or sentinel *)
  preempt : bool array;  (** per processor: reschedule requested *)
  mutable wakes : int;
  mutable picks : int;
  mutable preemptions : int;
}

val create :
  u:Universe.t ->
  lock:Spinlock.t ->
  op_cycles:int ->
  keep_running_in_queue:bool ->
  processors:int ->
  t

(** {2 Linked lists of Processes (LinkedList and Semaphore share layout)} *)

val ll_is_empty : t -> Oop.t -> bool

val ll_append : t -> Oop.t -> Oop.t -> unit

val ll_pop_first : t -> Oop.t -> Oop.t option

val ll_remove : t -> Oop.t -> Oop.t -> unit

(** {2 The ready queue} *)

val ready_list : t -> int -> Oop.t

val priority_of : t -> Oop.t -> int

val process_state : t -> Oop.t -> int

val set_running_on : t -> Oop.t -> int option -> unit

val running_on : t -> Oop.t -> int option

val is_in_ready_queue : t -> Oop.t -> bool

(** Flag the processor running the lowest-priority Process below the given
    priority for rescheduling. *)
val request_preemption : t -> priority:int -> unit

(** Make a Process ready (idempotent); may request preemption.  Returns
    the completion time of the locked operation. *)
val wake : t -> now:int -> Oop.t -> int

(** Choose the next Process for a processor: the highest-priority ready
    Process no processor is currently executing. *)
val pick : t -> now:int -> vp:int -> int * Oop.t option

(** The processor's current Process stops running; [requeue] keeps it
    ready (yield, preemption) rather than removing it (wait, suspend,
    terminate). *)
val relinquish : t -> now:int -> vp:int -> requeue:bool -> Oop.t -> int

(** Move the current Process to the back of its priority list. *)
val yield : t -> now:int -> vp:int -> Oop.t -> int

(** Read and clear the processor's preemption flag. *)
val take_preempt_flag : t -> int -> bool

(** Is a ready, not-running Process of higher priority available? *)
val better_ready : t -> than:int -> bool
