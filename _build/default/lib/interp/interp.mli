(** The bytecode interpreter: a steppable machine executing exactly one
    bytecode per {!step}.  The engine drives one interpreter per virtual
    processor, interleaving them in virtual-time order.

    Each step loads a Process if idle, performs the periodic duties of
    the original interpreter (polling the shared input queue and checking
    the scheduler — both lock-guarded, both sources of multiprocessor
    overhead), checks the eden low-water mark, then fetches, decodes and
    executes one bytecode, accumulating its cycle cost for the engine. *)

type step_result =
  | Ran  (** one bytecode executed; [st.cost] holds its cycles *)
  | Idle  (** no Process to run *)
  | Need_gc  (** eden low or allocation failed; park and scavenge *)

(** Eden head-room required before any step may run. *)
val low_water_mark : int

(** A conditional jump consumed a non-Boolean. *)
exception Must_be_boolean

(** A message had no receiver implementation and no [doesNotUnderstand:]
    handler (or an internal arity error). *)
exception Does_not_understand of string

type t

val create : State.t -> t

(** Perform a full message send: special-selector fast path aside, probe
    the method cache, walk the dictionaries on a miss, run the primitive,
    fall back to activation, or dispatch [doesNotUnderstand:]. *)
val full_send : State.t -> sel:Oop.t -> nargs:int -> super:bool -> unit

(** An idle interpreter still watches for input events; the engine calls
    this between ready-queue polls. *)
val idle_poll : t -> unit

(** Execute one step.  Resets and accumulates [State.cost]; the engine
    charges it (bus-adjusted) to the processor's clock. *)
val step : t -> step_result
