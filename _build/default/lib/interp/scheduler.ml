(* The VM side of Smalltalk Process scheduling.

   Smalltalk-80 scheduling is "a priority queue which is examined whenever
   a Semaphore is signalled or a Process manipulation primitive is
   invoked"; MS serializes it with one lock on the queue.  The MS
   reorganization is reproduced here: a Process made active is NOT removed
   from the ready queue — "the ready queue contains all Processes which
   are ready to run including those running" — and only the interpreter
   knows (via the [running_on] slot) whether a Process is running.  The
   [keep_running_in_queue] flag restores the uniprocessor BS behaviour for
   the reorganization ablation.

   The ready queue itself is the ProcessorScheduler heap object: an Array
   of LinkedLists, one per priority, with Processes chained through their
   [next_link] slots — fully visible at the Smalltalk level, exactly the
   exposure the paper worries about. *)

type t = {
  u : Universe.t;
  lock : Spinlock.t;
  op_cycles : int;              (* cost of one ready-queue operation *)
  keep_running_in_queue : bool;
  processors : int;
  running : Oop.t array;          (* per processor: process or sentinel *)
  preempt : bool array;           (* per processor: reschedule requested *)
  mutable wakes : int;
  mutable picks : int;
  mutable preemptions : int;
}

let create ~u ~lock ~op_cycles ~keep_running_in_queue ~processors =
  { u; lock; op_cycles; keep_running_in_queue; processors;
    running = Array.make processors Oop.sentinel;
    preempt = Array.make processors false;
    wakes = 0; picks = 0; preemptions = 0 }

let heap t = Universe.heap t.u
let nil t = t.u.Universe.nil

(* --- linked lists of Processes (LinkedList and Semaphore share layout) --- *)

let ll_is_empty t list =
  Oop.equal (Heap.get (heap t) list Layout.Linked_list.first) (nil t)

let ll_append t list proc =
  let h = heap t in
  let n = nil t in
  let first = Heap.get h list Layout.Linked_list.first in
  if Oop.equal first n then begin
    ignore (Heap.store_ptr h list Layout.Linked_list.first proc);
    ignore (Heap.store_ptr h list Layout.Linked_list.last proc)
  end
  else begin
    let last = Heap.get h list Layout.Linked_list.last in
    ignore (Heap.store_ptr h last Layout.Process.next_link proc);
    ignore (Heap.store_ptr h list Layout.Linked_list.last proc)
  end;
  ignore (Heap.store_ptr h proc Layout.Process.next_link n);
  ignore (Heap.store_ptr h proc Layout.Process.my_list list)

let ll_pop_first t list =
  let h = heap t in
  let n = nil t in
  let first = Heap.get h list Layout.Linked_list.first in
  if Oop.equal first n then None
  else begin
    let next = Heap.get h first Layout.Process.next_link in
    ignore (Heap.store_ptr h list Layout.Linked_list.first next);
    if Oop.equal next n then
      ignore (Heap.store_ptr h list Layout.Linked_list.last n);
    ignore (Heap.store_ptr h first Layout.Process.next_link n);
    ignore (Heap.store_ptr h first Layout.Process.my_list n);
    Some first
  end

let ll_remove t list proc =
  let h = heap t in
  let n = nil t in
  let rec unlink prev cur =
    if Oop.equal cur n then ()
    else if Oop.equal cur proc then begin
      let next = Heap.get h cur Layout.Process.next_link in
      (if Oop.equal prev n then
         ignore (Heap.store_ptr h list Layout.Linked_list.first next)
       else ignore (Heap.store_ptr h prev Layout.Process.next_link next));
      if Oop.equal next n then
        ignore
          (Heap.store_ptr h list Layout.Linked_list.last
             (if Oop.equal prev n then n else prev));
      ignore (Heap.store_ptr h proc Layout.Process.next_link n);
      ignore (Heap.store_ptr h proc Layout.Process.my_list n)
    end
    else unlink cur (Heap.get h cur Layout.Process.next_link)
  in
  unlink n (Heap.get h list Layout.Linked_list.first)

(* --- the ready queue --- *)

let ready_list t priority =
  let h = heap t in
  let lists = Heap.get h t.u.Universe.scheduler Layout.Scheduler.ready_lists in
  Heap.get h lists (priority - 1)

let priority_of t proc =
  Oop.small_val (Heap.get (heap t) proc Layout.Process.priority)

let process_state t proc =
  Oop.small_val (Heap.get (heap t) proc Layout.Process.state)

let set_running_on t proc vp_opt =
  let v =
    match vp_opt with
    | Some vp -> Oop.of_small vp
    | None -> nil t
  in
  ignore (Heap.store_ptr (heap t) proc Layout.Process.running_on v)

let running_on t proc =
  let v = Heap.get (heap t) proc Layout.Process.running_on in
  if Oop.is_small v then Some (Oop.small_val v) else None

let is_in_ready_queue t proc =
  let list = Heap.get (heap t) proc Layout.Process.my_list in
  not (Oop.equal list (nil t))
  && Oop.equal list (ready_list t (priority_of t proc))

(* Request a reschedule of the processor running the lowest-priority
   process below [priority], if any. *)
let request_preemption t ~priority =
  let victim = ref (-1) and worst = ref priority in
  Array.iteri
    (fun vp proc ->
      if not (Oop.equal proc Oop.sentinel) then begin
        let p = priority_of t proc in
        if p < !worst then begin
          worst := p;
          victim := vp
        end
      end)
    t.running;
  if !victim >= 0 then begin
    t.preempt.(!victim) <- true;
    t.preemptions <- t.preemptions + 1
  end

(* Make [proc] ready.  Idempotent when it is already in the ready queue. *)
let wake t ~now proc =
  let now = Spinlock.locked_op t.lock ~now ~op_cycles:t.op_cycles in
  t.wakes <- t.wakes + 1;
  if not (is_in_ready_queue t proc) then
    ll_append t (ready_list t (priority_of t proc)) proc;
  request_preemption t ~priority:(priority_of t proc);
  now

(* Choose the next Process for processor [vp]: the highest-priority ready
   Process that no processor is currently executing. *)
let pick t ~now ~vp =
  let now = Spinlock.locked_op t.lock ~now ~op_cycles:t.op_cycles in
  t.picks <- t.picks + 1;
  let h = heap t in
  let n = nil t in
  let found = ref Oop.sentinel in
  let priority = ref Layout.Scheduler.priorities in
  while Oop.equal !found Oop.sentinel && !priority >= 1 do
    let list = ready_list t !priority in
    let rec scan cur =
      if Oop.equal cur n then ()
      else if
        running_on t cur = None
        && process_state t cur = Layout.Process_state.runnable
      then found := cur
      else scan (Heap.get h cur Layout.Process.next_link)
    in
    scan (Heap.get h list Layout.Linked_list.first);
    decr priority
  done;
  if Oop.equal !found Oop.sentinel then (now, None)
  else begin
    let proc = !found in
    if not t.keep_running_in_queue then
      ll_remove t (ready_list t (priority_of t proc)) proc;
    set_running_on t proc (Some vp);
    t.running.(vp) <- proc;
    (now, Some proc)
  end

(* The current Process of [vp] stops running.  [requeue] keeps it ready
   (yield/preemption); otherwise it leaves the ready queue (wait, suspend,
   terminate). *)
let relinquish t ~now ~vp ~requeue proc =
  let now = Spinlock.locked_op t.lock ~now ~op_cycles:t.op_cycles in
  set_running_on t proc None;
  t.running.(vp) <- Oop.sentinel;
  if requeue then begin
    if not (is_in_ready_queue t proc) then
      ll_append t (ready_list t (priority_of t proc)) proc
  end
  else if is_in_ready_queue t proc then
    ll_remove t (ready_list t (priority_of t proc)) proc;
  now

(* Move the current Process to the back of its priority list. *)
let yield t ~now ~vp proc =
  let now = Spinlock.locked_op t.lock ~now ~op_cycles:t.op_cycles in
  let list = ready_list t (priority_of t proc) in
  if is_in_ready_queue t proc then ll_remove t list proc;
  ll_append t list proc;
  set_running_on t proc None;
  t.running.(vp) <- Oop.sentinel;
  now

let take_preempt_flag t vp =
  if t.preempt.(vp) then begin
    t.preempt.(vp) <- false;
    true
  end
  else false

(* Is there a ready, not-running Process with priority above [p]? *)
let better_ready t ~than:p =
  let h = heap t in
  let n = nil t in
  let rec check priority =
    if priority <= p then false
    else begin
      let list = ready_list t priority in
      let rec scan cur =
        if Oop.equal cur n then false
        else if
          running_on t cur = None
          && process_state t cur = Layout.Process_state.runnable
        then true
        else scan (Heap.get h cur Layout.Process.next_link)
      in
      if scan (Heap.get h list Layout.Linked_list.first) then true
      else check (priority - 1)
    end
  in
  check Layout.Scheduler.priorities
