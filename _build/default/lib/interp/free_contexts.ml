(* The free-context list.

   "BS maintains a list of unused stack frames, because it is more
   efficient to reuse one than to allocate and initialize a new one."
   Profiling an early MS revealed that serializing this list caused a
   bottleneck; replicating it per processor reduced the worst-case
   overhead from 160% to 65% (paper, section 3.2).

   Contexts come in two standard sizes (small and large frames).  Free
   contexts are chained through their [sender] slot.  The lists are
   flushed at every scavenge: their entries are dead objects that the
   scavenger reclaims by simply not copying them. *)

type mode =
  | Replicated               (* one pair of lists per processor *)
  | Shared_locked of Spinlock.t
  | Disabled                 (* always allocate fresh (ablation) *)

type lists = {
  mutable small : Oop.t;     (* head of the small-context chain *)
  mutable large : Oop.t;
}

type t = {
  mode : mode;
  lists : lists;             (* own (replicated) or the shared pair *)
  mutable reuses : int;
  mutable fresh : int;
  mutable returns : int;     (* contexts handed back *)
}

let empty_lists () = { small = Oop.sentinel; large = Oop.sentinel }

let create_replicated () =
  { mode = Replicated; lists = empty_lists (); reuses = 0; fresh = 0;
    returns = 0 }

let create_shared ~lock ~lists =
  { mode = Shared_locked lock; lists; reuses = 0; fresh = 0; returns = 0 }

let create_disabled () =
  { mode = Disabled; lists = empty_lists (); reuses = 0; fresh = 0;
    returns = 0 }

let flush t =
  t.lists.small <- Oop.sentinel;
  t.lists.large <- Oop.sentinel

type size_class = Small | Large

(* Pop a recycled context, charging lock time for the shared variant.
   Returns (now, ctx) where ctx is [Oop.sentinel] when the list is empty. *)
let take t heap ~now size =
  match t.mode with
  | Disabled -> (now, Oop.sentinel)
  | Replicated | Shared_locked _ ->
      let now =
        match t.mode with
        | Shared_locked lock -> Spinlock.locked_op lock ~now ~op_cycles:6
        | Replicated | Disabled -> now
      in
      let head = match size with Small -> t.lists.small | Large -> t.lists.large in
      if Oop.equal head Oop.sentinel then begin
        t.fresh <- t.fresh + 1;
        (now, Oop.sentinel)
      end
      else begin
        let next = Heap.get heap head Layout.Ctx.sender in
        (match size with
         | Small -> t.lists.small <- next
         | Large -> t.lists.large <- next);
        t.reuses <- t.reuses + 1;
        (now, head)
      end

(* Hand a dead context back for reuse. *)
let give t heap ~now size ctx =
  match t.mode with
  | Disabled -> now
  | Replicated | Shared_locked _ ->
      let now =
        match t.mode with
        | Shared_locked lock -> Spinlock.locked_op lock ~now ~op_cycles:6
        | Replicated | Disabled -> now
      in
      t.returns <- t.returns + 1;
      (* [store_ptr], not [set_raw]: a tenured context on the free list must
         stay visible to the entry table while it links to new space *)
      (match size with
       | Small ->
           ignore (Heap.store_ptr heap ctx Layout.Ctx.sender t.lists.small);
           t.lists.small <- ctx
       | Large ->
           ignore (Heap.store_ptr heap ctx Layout.Ctx.sender t.lists.large);
           t.lists.large <- ctx);
      now

let reuses t = t.reuses
let fresh_allocations t = t.fresh
