(** Context (stack frame) management: allocation through the free-context
    lists, method and block activation, and returns.

    Contexts are heap objects of two standard sizes.  A method context's
    frame holds its temporaries followed by its evaluation stack; a block
    context's frame is evaluation stack only, its temporaries (including
    block parameters) living in the home context, Smalltalk-80 style. *)

val frame_need : ntemps:int -> maxstack:int -> int

(** @raise State.Vm_error when the frame exceeds the large size. *)
val size_class_of : int -> Free_contexts.size_class

val frame_slots : Free_contexts.size_class -> int

(** Allocate a context, recycling from the free list when possible;
    charges the cost model (and the allocation lock on a fresh
    allocation).  May raise [Heap.Scavenge_needed]; callers must not have
    mutated state yet. *)
val alloc_context : State.t -> size:Free_contexts.size_class -> cls:Oop.t -> Oop.t

(** General-purpose new-space allocation for primitives, under the
    allocation lock. *)
val alloc_object :
  State.t -> slots:int -> raw:bool -> ?bytes:bool -> cls:Oop.t -> unit -> Oop.t

(** The method's packed info word. *)
val minfo : State.t -> Oop.t -> int

val switch_to : State.t -> Oop.t -> unit

(** Activate a method for a send: the caller's stack holds the receiver
    and [nargs] arguments; they are copied into the new context's
    temporaries and popped. *)
val activate_method : State.t -> meth:Oop.t -> nargs:int -> unit

(** Create a BlockContext for a [Push_block] instruction. *)
val create_block_ctx : State.t -> startpc:int -> nargs:int -> argstart:int -> Oop.t

(** Activate a block for the value/value:... primitive; [None] when the
    argument count does not match. *)
val activate_block : State.t -> block:Oop.t -> nargs:int -> unit option

(** Only method contexts of block-free methods are safely recyclable. *)
val recyclable : State.t -> Oop.t -> bool

val size_class_of_ctx : State.t -> Oop.t -> Free_contexts.size_class

(** Return [value] to [target], recycling the dead context when safe;
    false when [target] is nil (the process's bottom frame returned). *)
val return_to : State.t -> from_ctx:Oop.t -> target:Oop.t -> value:Oop.t -> bool
