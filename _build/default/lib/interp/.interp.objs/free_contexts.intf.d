lib/interp/free_contexts.mli: Heap Oop Spinlock
