lib/interp/method_cache.ml: Array Oop Spinlock
