lib/interp/state.ml: Cost_model Devices Free_contexts Heap Layout Machine Method_cache Oop Printf Scheduler Spinlock Universe
