lib/interp/ctx.mli: Free_contexts Oop State
