lib/interp/free_contexts.ml: Heap Layout Oop Spinlock
