lib/interp/interp.ml: Array Cost_model Ctx Devices Heap Layout Machine Method_cache Oop Opcode Primitives Scheduler Spinlock State Universe
