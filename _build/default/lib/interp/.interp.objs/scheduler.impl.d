lib/interp/scheduler.ml: Array Heap Layout Oop Spinlock Universe
