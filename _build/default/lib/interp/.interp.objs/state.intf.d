lib/interp/state.mli: Cost_model Devices Free_contexts Heap Machine Method_cache Oop Scheduler Spinlock Universe
