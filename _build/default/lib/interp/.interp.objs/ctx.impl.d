lib/interp/ctx.ml: Cost_model Free_contexts Heap Layout Oop Spinlock State Universe
