lib/interp/primitives.ml: Buffer Char Cost_model Ctx Devices Heap Layout List Oop Printf Scheduler Spinlock State String Universe
