lib/interp/primitives.mli: Buffer Oop State
