lib/interp/scheduler.mli: Oop Spinlock Universe
