lib/interp/method_cache.mli: Oop Spinlock
