lib/interp/interp.mli: Oop State
