(* Disassembler: decodes a word array back into instructions and renders a
   human-readable listing.  [~literal] supplies a printable form for
   literal-table entries (selectors, constants, globals). *)

let decode_all code =
  Array.to_list (Array.mapi (fun pc w -> (pc, Opcode.decode w)) code)

let pp_listing ?literal fmt code =
  let lit n =
    match literal with
    | Some f -> f n
    | None -> Printf.sprintf "lit%d" n
  in
  List.iter
    (fun (pc, op) ->
      let target off = pc + 1 + off in
      (match op with
       | Opcode.Send { selector; nargs } ->
           Format.fprintf fmt "%4d  send %s (%d args)@." pc (lit selector) nargs
       | Opcode.Super_send { selector; nargs } ->
           Format.fprintf fmt "%4d  superSend %s (%d args)@." pc (lit selector)
             nargs
       | Opcode.Push_literal n ->
           Format.fprintf fmt "%4d  pushLiteral %s@." pc (lit n)
       | Opcode.Push_global n ->
           Format.fprintf fmt "%4d  pushGlobal %s@." pc (lit n)
       | Opcode.Store_global n ->
           Format.fprintf fmt "%4d  storeGlobal %s@." pc (lit n)
       | Opcode.Jump off -> Format.fprintf fmt "%4d  jump -> %d@." pc (target off)
       | Opcode.Jump_if_true off ->
           Format.fprintf fmt "%4d  jumpIfTrue -> %d@." pc (target off)
       | Opcode.Jump_if_false off ->
           Format.fprintf fmt "%4d  jumpIfFalse -> %d@." pc (target off)
       | Opcode.Push_block { nargs; arg_start; body_len } ->
           Format.fprintf fmt "%4d  pushBlock args:%d@%d body -> %d..%d@." pc
             nargs arg_start (pc + 1) (pc + body_len)
       | other -> Format.fprintf fmt "%4d  %a@." pc Opcode.pp other))
    (decode_all code)

let to_string ?literal code =
  Format.asprintf "%a" (fun fmt -> pp_listing ?literal fmt) code
