(** A small label-resolving assembler used by the code generator.

    Instructions are appended to a growing buffer; jumps may target labels
    placed later.  [finish] patches every jump and returns the encoded
    word array. *)

type t

type label

val create : unit -> t

(** Current instruction index. *)
val here : t -> int

val emit : t -> Opcode.t -> unit

val new_label : t -> label

(** Binds the label to the current position.
    @raise Invalid_argument if placed twice. *)
val place_label : t -> label -> unit

(** Emit a control transfer whose offset is patched at [finish].
    [`Block (nargs, arg_start)] emits a [Push_block] whose body extends to
    the label. *)
val emit_jump :
  t -> [ `Jump | `If_true | `If_false | `Block of int * int ] -> label -> unit

(** @raise Invalid_argument on unplaced labels or backward block bodies. *)
val finish : t -> int array
