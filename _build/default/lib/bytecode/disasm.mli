(** Disassembler: decodes a word array back into instructions and renders
    a listing.  [literal] supplies a printable form for literal-table
    entries (selectors, constants, globals). *)

val decode_all : int array -> (int * Opcode.t) list

val pp_listing : ?literal:(int -> string) -> Format.formatter -> int array -> unit

val to_string : ?literal:(int -> string) -> int array -> string
