(* The bytecode set of the virtual machine.

   Each instruction is one word: a 6-bit tag, a 20-bit [a] operand and the
   remaining bits for [b].  Jump offsets and immediate integers are biased
   so they encode negative values.  The interpreter dispatches on the raw
   word (see the [tag]/[a]/[b] accessors); the [t] variant is used by the
   assembler, the disassembler and the decompiler. *)

type t =
  | Push_receiver
  | Push_temp of int            (* frame temporary (in home for blocks) *)
  | Push_ivar of int
  | Push_literal of int
  | Push_nil
  | Push_true
  | Push_false
  | Push_smallint of int        (* immediate constant *)
  | Push_global of int          (* literal index of an Association *)
  | Push_block of { nargs : int; arg_start : int; body_len : int }
  | Store_temp of int           (* store, leaving the value on the stack *)
  | Store_ivar of int
  | Store_global of int
  | Pop
  | Dup
  | Send of { selector : int; nargs : int }   (* selector = literal index *)
  | Super_send of { selector : int; nargs : int }
  | Jump of int                 (* relative to the following instruction *)
  | Jump_if_true of int         (* pops the condition *)
  | Jump_if_false of int
  | Return_top                  (* ^expr — from the home context in blocks *)
  | Return_receiver             (* ^self, and method fall-through *)
  | Block_return                (* value of the block body, to its caller *)

(* --- tags --- *)

let tag_push_receiver = 0
let tag_push_temp = 1
let tag_push_ivar = 2
let tag_push_literal = 3
let tag_push_nil = 4
let tag_push_true = 5
let tag_push_false = 6
let tag_push_smallint = 7
let tag_push_global = 8
let tag_push_block = 9
let tag_store_temp = 10
let tag_store_ivar = 11
let tag_store_global = 12
let tag_pop = 13
let tag_dup = 14
let tag_send = 15
let tag_super_send = 16
let tag_jump = 17
let tag_jump_if_true = 18
let tag_jump_if_false = 19
let tag_return_top = 20
let tag_return_receiver = 21
let tag_block_return = 22

let a_bits = 20
let a_mask = (1 lsl a_bits) - 1
let bias = 1 lsl (a_bits - 1)

(* --- word accessors (the interpreter's fast path) --- *)

let tag w = w land 0x3f
let a w = (w lsr 6) land a_mask
let signed_a w = a w - bias
let b w = w lsr (6 + a_bits)

(* --- encoding --- *)

let pack ~tag:t ~a ~b =
  if a < 0 || a > a_mask then invalid_arg "Opcode.pack: a out of range";
  t lor (a lsl 6) lor (b lsl (6 + a_bits))

let encode = function
  | Push_receiver -> pack ~tag:tag_push_receiver ~a:0 ~b:0
  | Push_temp n -> pack ~tag:tag_push_temp ~a:n ~b:0
  | Push_ivar n -> pack ~tag:tag_push_ivar ~a:n ~b:0
  | Push_literal n -> pack ~tag:tag_push_literal ~a:n ~b:0
  | Push_nil -> pack ~tag:tag_push_nil ~a:0 ~b:0
  | Push_true -> pack ~tag:tag_push_true ~a:0 ~b:0
  | Push_false -> pack ~tag:tag_push_false ~a:0 ~b:0
  | Push_smallint v -> pack ~tag:tag_push_smallint ~a:(v + bias) ~b:0
  | Push_global n -> pack ~tag:tag_push_global ~a:n ~b:0
  | Push_block { nargs; arg_start; body_len } ->
      pack ~tag:tag_push_block ~a:body_len ~b:(nargs lor (arg_start lsl 5))
  | Store_temp n -> pack ~tag:tag_store_temp ~a:n ~b:0
  | Store_ivar n -> pack ~tag:tag_store_ivar ~a:n ~b:0
  | Store_global n -> pack ~tag:tag_store_global ~a:n ~b:0
  | Pop -> pack ~tag:tag_pop ~a:0 ~b:0
  | Dup -> pack ~tag:tag_dup ~a:0 ~b:0
  | Send { selector; nargs } -> pack ~tag:tag_send ~a:selector ~b:nargs
  | Super_send { selector; nargs } ->
      pack ~tag:tag_super_send ~a:selector ~b:nargs
  | Jump off -> pack ~tag:tag_jump ~a:(off + bias) ~b:0
  | Jump_if_true off -> pack ~tag:tag_jump_if_true ~a:(off + bias) ~b:0
  | Jump_if_false off -> pack ~tag:tag_jump_if_false ~a:(off + bias) ~b:0
  | Return_top -> pack ~tag:tag_return_top ~a:0 ~b:0
  | Return_receiver -> pack ~tag:tag_return_receiver ~a:0 ~b:0
  | Block_return -> pack ~tag:tag_block_return ~a:0 ~b:0

let decode w =
  let t = tag w in
  if t = tag_push_receiver then Push_receiver
  else if t = tag_push_temp then Push_temp (a w)
  else if t = tag_push_ivar then Push_ivar (a w)
  else if t = tag_push_literal then Push_literal (a w)
  else if t = tag_push_nil then Push_nil
  else if t = tag_push_true then Push_true
  else if t = tag_push_false then Push_false
  else if t = tag_push_smallint then Push_smallint (signed_a w)
  else if t = tag_push_global then Push_global (a w)
  else if t = tag_push_block then
    Push_block { nargs = b w land 0x1f; arg_start = b w lsr 5; body_len = a w }
  else if t = tag_store_temp then Store_temp (a w)
  else if t = tag_store_ivar then Store_ivar (a w)
  else if t = tag_store_global then Store_global (a w)
  else if t = tag_pop then Pop
  else if t = tag_dup then Dup
  else if t = tag_send then Send { selector = a w; nargs = b w }
  else if t = tag_super_send then Super_send { selector = a w; nargs = b w }
  else if t = tag_jump then Jump (signed_a w)
  else if t = tag_jump_if_true then Jump_if_true (signed_a w)
  else if t = tag_jump_if_false then Jump_if_false (signed_a w)
  else if t = tag_return_top then Return_top
  else if t = tag_return_receiver then Return_receiver
  else if t = tag_block_return then Block_return
  else invalid_arg (Printf.sprintf "Opcode.decode: unknown tag %d" t)

(* Net effect on the stack depth, for the code generator's max-stack
   computation.  [Push_block] pushes the new BlockContext. *)
let stack_effect = function
  | Push_receiver | Push_temp _ | Push_ivar _ | Push_literal _
  | Push_nil | Push_true | Push_false | Push_smallint _
  | Push_global _ | Push_block _ | Dup -> 1
  | Store_temp _ | Store_ivar _ | Store_global _ | Jump _ -> 0
  | Pop | Jump_if_true _ | Jump_if_false _ -> -1
  | Send { nargs; _ } | Super_send { nargs; _ } -> -nargs
  | Return_top | Return_receiver | Block_return -> 0

let pp fmt op =
  let s = Format.fprintf in
  match op with
  | Push_receiver -> s fmt "pushReceiver"
  | Push_temp n -> s fmt "pushTemp %d" n
  | Push_ivar n -> s fmt "pushIvar %d" n
  | Push_literal n -> s fmt "pushLiteral %d" n
  | Push_nil -> s fmt "pushNil"
  | Push_true -> s fmt "pushTrue"
  | Push_false -> s fmt "pushFalse"
  | Push_smallint v -> s fmt "pushInt %d" v
  | Push_global n -> s fmt "pushGlobal %d" n
  | Push_block { nargs; arg_start; body_len } ->
      s fmt "pushBlock nargs:%d argStart:%d len:%d" nargs arg_start body_len
  | Store_temp n -> s fmt "storeTemp %d" n
  | Store_ivar n -> s fmt "storeIvar %d" n
  | Store_global n -> s fmt "storeGlobal %d" n
  | Pop -> s fmt "pop"
  | Dup -> s fmt "dup"
  | Send { selector; nargs } -> s fmt "send lit:%d nargs:%d" selector nargs
  | Super_send { selector; nargs } ->
      s fmt "superSend lit:%d nargs:%d" selector nargs
  | Jump n -> s fmt "jump %+d" n
  | Jump_if_true n -> s fmt "jumpIfTrue %+d" n
  | Jump_if_false n -> s fmt "jumpIfFalse %+d" n
  | Return_top -> s fmt "returnTop"
  | Return_receiver -> s fmt "returnReceiver"
  | Block_return -> s fmt "blockReturn"
