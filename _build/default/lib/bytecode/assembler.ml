(* A small label-resolving assembler used by the code generator.

   Instructions are appended to a growing buffer; jumps may target labels
   that are placed later.  [finish] patches every jump and returns the
   encoded word array. *)

type label = int

type pending = {
  at : int;               (* instruction index of the jump *)
  target : label;
  kind : [ `Jump | `If_true | `If_false | `Block of int * int ];
  (* for [`Block (nargs, arg_start)] the label marks the end of the body *)
}

type t = {
  mutable code : int array;
  mutable len : int;
  mutable labels : int array;      (* label -> instruction index, -1 pending *)
  mutable nlabels : int;
  mutable pendings : pending list;
}

let create () = {
  code = Array.make 64 0;
  len = 0;
  labels = Array.make 16 (-1);
  nlabels = 0;
  pendings = [];
}

let here t = t.len

let emit t op =
  if t.len = Array.length t.code then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.code 0 bigger 0 t.len;
    t.code <- bigger
  end;
  t.code.(t.len) <- Opcode.encode op;
  t.len <- t.len + 1

let new_label t =
  if t.nlabels = Array.length t.labels then begin
    let bigger = Array.make (2 * t.nlabels) (-1) in
    Array.blit t.labels 0 bigger 0 t.nlabels;
    t.labels <- bigger
  end;
  let l = t.nlabels in
  t.nlabels <- l + 1;
  l

let place_label t l =
  if t.labels.(l) <> -1 then invalid_arg "Assembler.place_label: placed twice";
  t.labels.(l) <- t.len

(* Emit a jump to [target]; placeholder offset patched at [finish]. *)
let emit_jump t kind target =
  t.pendings <- { at = t.len; target; kind } :: t.pendings;
  let op =
    match kind with
    | `Jump -> Opcode.Jump 0
    | `If_true -> Opcode.Jump_if_true 0
    | `If_false -> Opcode.Jump_if_false 0
    | `Block (nargs, arg_start) ->
        Opcode.Push_block { nargs; arg_start; body_len = 0 }
  in
  emit t op

let finish t =
  List.iter
    (fun p ->
      let dest = t.labels.(p.target) in
      if dest < 0 then invalid_arg "Assembler.finish: unplaced label";
      (* offsets are relative to the instruction after the jump *)
      let off = dest - (p.at + 1) in
      let op =
        match p.kind with
        | `Jump -> Opcode.Jump off
        | `If_true -> Opcode.Jump_if_true off
        | `If_false -> Opcode.Jump_if_false off
        | `Block (nargs, arg_start) ->
            if off < 0 then
              invalid_arg "Assembler.finish: block body must extend forward";
            Opcode.Push_block { nargs; arg_start; body_len = off }
      in
      t.code.(p.at) <- Opcode.encode op)
    t.pendings;
  Array.sub t.code 0 t.len
