lib/bytecode/assembler.mli: Opcode
