lib/bytecode/disasm.mli: Format Opcode
