lib/bytecode/assembler.ml: Array List Opcode
