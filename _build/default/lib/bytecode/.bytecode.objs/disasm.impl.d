lib/bytecode/disasm.ml: Array Format List Opcode Printf
