(** Rendering the paper's tables and figures from measured results. *)

(** {2 Table 2 and Figure 2} *)

(** Absolute simulated seconds with the paper's numbers alongside. *)
val print_table2 :
  Format.formatter -> (Macro.state * (Macro.benchmark * Macro.cell) list) list -> unit

(** Per-benchmark ratios to the baseline state (which must be first). *)
val normalized :
  (Macro.state * (Macro.benchmark * Macro.cell) list) list ->
  (Macro.state * (Macro.benchmark * float) list) list

(** ASCII bar chart of the normalized overheads, paper values alongside. *)
val print_figure2 :
  Format.formatter -> (Macro.state * (Macro.benchmark * Macro.cell) list) list -> unit

(** {2 The paper's prose numbers} *)

type overhead_summary = {
  static_worst : float;  (** MS vs baseline *)
  static_mean : float;
  idle_worst : float;
  idle_mean : float;
  busy_worst : float;
  busy_mean : float;
}

val summarize :
  (Macro.state * (Macro.benchmark * Macro.cell) list) list -> overhead_summary

val print_summary :
  Format.formatter -> (Macro.state * (Macro.benchmark * Macro.cell) list) list -> unit

(** {2 Static content} *)

val table1 : string

val table3 : string

val figure1 : string
