(* Scavenge economics (paper section 3.1).

   The paper argues: the scavenge interval is roughly s/r (allocation-space
   size over allocation rate), so doubling s doubles the interval; with k
   processors allocating, an allocation space of k*s keeps the interval —
   and scavenging stays a small fraction (~3%) of processor time.  The
   parallel-scavenge extension ("applying multiple processors to the
   scavenging operation") should hold the total overhead near the
   uniprocessor figure. *)

type row = {
  eden_kb : int;
  allocators : int;
  scavenge_workers : int;
  scavenges : int;
  interval_s : float;        (* mean simulated time between scavenges *)
  gc_share : float;          (* fraction of run time spent scavenging *)
  total_s : float;
}

(* An allocation-heavy workload: the per-iteration allocation mirrors the
   busy Process. *)
let churn_classes = {st|
CLASS GcChurn SUPER Object
METHODS GcChurn
churn: n
    "allocate continuously, keeping a window of recent objects live so
     every scavenge has real survivors to copy"
    | keep p |
    keep := Array new: 300.
    1 to: n do: [:i |
        p := Point x: i y: i.
        (Array new: 16) at: 1 put: p.
        keep at: i \\ 300 + 1 put: (Array with: p with: i)].
    ^n
!
spawnChurn: n done: sem
    [ self churn: n. sem signal ] fork
!
|st}

let run_one ~eden_kb ~allocators ~scavenge_workers ~iterations =
  let processors = max 1 allocators in
  let config =
    let base =
      if processors = 1 then Config.ms ~processors:1 ()
      else Config.ms ~processors ()
    in
    { base with
      Config.eden_words = eden_kb * 1024 / 8;
      Config.scavenge_workers }
  in
  let vm = Vm.create config in
  Vm.load_classes vm churn_classes;
  let src =
    if allocators <= 1 then
      Printf.sprintf "GcChurn new churn: %d" iterations
    else
      Printf.sprintf
        "| sem churn |\n\
         sem := Semaphore new.\n\
         churn := GcChurn new.\n\
         1 to: %d do: [:k | churn spawnChurn: %d done: sem].\n\
         1 to: %d do: [:k | sem wait].\n\
         ^0"
        allocators (iterations / allocators) allocators
  in
  let t0 = Vm.cycles vm in
  (match Vm.run ~watch:(Vm.spawn vm src) vm with
   | Vm.Finished _ -> ()
   | Vm.Deadlock | Vm.Cycle_limit -> failwith "gc study run failed");
  let cycles = Vm.cycles vm - t0 in
  let scavenges = Heap.scavenge_count vm.Vm.heap in
  let cm = config.Config.cost in
  { eden_kb;
    allocators;
    scavenge_workers;
    scavenges;
    interval_s =
      (if scavenges = 0 then infinity
       else Cost_model.seconds cm (cycles / scavenges));
    gc_share = float_of_int vm.Vm.scavenge_cycles /. float_of_int cycles;
    total_s = Cost_model.seconds cm cycles }

(* E8: eden size sweep with one allocator. *)
let eden_sweep ?(iterations = 30_000) () =
  List.map
    (fun eden_kb -> run_one ~eden_kb ~allocators:1 ~scavenge_workers:1 ~iterations)
    [ 40; 80; 160; 320 ]

(* E8b: k allocating processes, eden scaled as k*s keeps the interval. *)
let scaling_sweep ?(iterations = 30_000) () =
  List.map
    (fun k ->
      run_one ~eden_kb:(80 * k) ~allocators:k ~scavenge_workers:1 ~iterations)
    [ 1; 2; 4 ]

(* E10: parallel scavenging with 4 busy allocators. *)
let parallel_scavenge_sweep ?(iterations = 30_000) () =
  List.map
    (fun workers ->
      run_one ~eden_kb:80 ~allocators:4 ~scavenge_workers:workers ~iterations)
    [ 1; 2; 3; 5 ]

let print_rows fmt ~label rows =
  Format.fprintf fmt "%s@." label;
  Format.fprintf fmt
    "  eden(KB)  allocators  gc-workers  scavenges  interval(s)  gc-share  total(s)@.";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %7d  %9d  %9d  %9d  %10.3f  %7.1f%%  %8.2f@."
        r.eden_kb r.allocators r.scavenge_workers r.scavenges r.interval_s
        (100.0 *. r.gc_share) r.total_s)
    rows
