lib/benchmarks/gc_study.ml: Config Cost_model Format Heap List Printf Vm
