lib/benchmarks/macro.ml: Config Cost_model Heap List Printf Vm Workloads
