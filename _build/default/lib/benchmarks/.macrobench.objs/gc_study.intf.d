lib/benchmarks/gc_study.mli: Format
