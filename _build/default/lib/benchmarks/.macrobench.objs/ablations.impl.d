lib/benchmarks/ablations.ml: Config Format List Macro Vm
