lib/benchmarks/ablations.mli: Format
