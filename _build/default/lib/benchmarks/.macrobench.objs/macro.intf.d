lib/benchmarks/macro.mli: Config Vm
