lib/benchmarks/report.ml: Array Format List Macro String
