lib/benchmarks/report.mli: Format Macro
