(** The macro benchmarks (after McCall's standard Smalltalk-80
    benchmarks) and the four system states of the paper's evaluation:
    baseline BS, MS, MS + four idle Processes, MS + four busy Processes.

    Each benchmark is a typical programming-environment activity written
    in Smalltalk and executed by the interpreter; repetition counts are
    fixed so the baseline column lands near the paper's Table 2. *)

type state = Baseline | Ms_uni | Ms_idle | Ms_busy

val state_name : state -> string

val all_states : state list

val config_of_state : ?config_tweak:(Config.t -> Config.t) -> state -> Config.t

(** The workload classes (MacroBenchmarks, BenchScratch) in
    image-definition format. *)
val benchmark_classes : string

type benchmark = {
  key : string;
  title : string;  (** the paper's column label *)
  body : string;  (** one iteration; [bench] is the receiver *)
  reps : int;
  paper : float array;  (** the paper's Table 2 row: BS, MS, idle, busy *)
}

(** The eight benchmarks, in the paper's column order. *)
val benchmarks : benchmark list

type cell = {
  seconds : float;  (** simulated seconds for the timed run *)
  cycles : int;
  scavenges : int;
}

(** A VM in [state], with the workload classes loaded and the background
    Processes spawned. *)
val prepare_vm : ?config_tweak:(Config.t -> Config.t) -> state -> Vm.t

(** Run one benchmark on a prepared VM. *)
val run_on : Vm.t -> benchmark -> cell

(** The full Table 2: every benchmark in every state, one VM per state,
    benchmarks run back to back. *)
val run_table2 :
  ?config_tweak:(Config.t -> Config.t) ->
  ?states:state list ->
  ?benchmarks:benchmark list ->
  unit ->
  (state * (benchmark * cell) list) list
