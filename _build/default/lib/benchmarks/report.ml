(* Rendering the paper's tables and figures from measured results. *)

let state_paper_index = function
  | Macro.Baseline -> 0
  | Macro.Ms_uni -> 1
  | Macro.Ms_idle -> 2
  | Macro.Ms_busy -> 3

(* --- Table 2: absolute times --- *)

let print_table2 fmt results =
  Format.fprintf fmt
    "Table 2: Preliminary performance results (simulated seconds; paper's \
     numbers in parentheses)@.@.";
  Format.fprintf fmt "%-34s" "State";
  List.iter
    (fun (b, _) -> Format.fprintf fmt " %16s" b.Macro.key)
    (snd (List.hd results));
  Format.fprintf fmt "@.";
  List.iter
    (fun (state, cells) ->
      Format.fprintf fmt "%-34s" (Macro.state_name state);
      List.iter
        (fun (b, cell) ->
          Format.fprintf fmt " %8.1f (%5.1f)" cell.Macro.seconds
            b.Macro.paper.(state_paper_index state))
        cells;
      Format.fprintf fmt "@.")
    results;
  Format.fprintf fmt
    "@.All times in simulated seconds at 1 MIPS; differences of less than \
     3%% are not significant.@."

(* --- Figure 2: normalized overheads, as an ASCII bar chart --- *)

let normalized results =
  match results with
  | (Macro.Baseline, baseline_cells) :: _ ->
      List.map
        (fun (state, cells) ->
          ( state,
            List.map2
              (fun (b, base) (b', cell) ->
                assert (b.Macro.key = b'.Macro.key);
                (b, cell.Macro.seconds /. base.Macro.seconds))
              baseline_cells cells ))
        results
  | _ -> invalid_arg "normalized: results must start with the baseline"

let print_figure2 fmt results =
  let norm = normalized results in
  Format.fprintf fmt
    "Figure 2: Preliminary overhead measurements - normalized to baseline@.@.";
  List.iter
    (fun (b, _) ->
      let key = b.Macro.key in
      Format.fprintf fmt "%-14s@." key;
      List.iter
        (fun (state, cells) ->
          let ratio = List.assoc b cells in
          let paper_ratio =
            b.Macro.paper.(state_paper_index state) /. b.Macro.paper.(0)
          in
          let bar = String.make (int_of_float (ratio *. 24.0)) '#' in
          Format.fprintf fmt "  %-30s %-42s %.2f (paper %.2f)@."
            (Macro.state_name state) bar ratio paper_ratio)
        norm;
      Format.fprintf fmt "@.")
    (snd (List.hd results))

(* --- summary statistics used by the paper's prose --- *)

type overhead_summary = {
  static_worst : float;     (* MS vs baseline *)
  static_mean : float;
  idle_worst : float;       (* MS+4 idle vs baseline *)
  idle_mean : float;
  busy_worst : float;       (* MS+4 busy vs baseline *)
  busy_mean : float;
}

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
let worst l = List.fold_left max 0.0 l

let summarize results =
  let norm = normalized results in
  let ratios state =
    match List.assoc_opt state norm with
    | Some cells -> List.map (fun (_, r) -> r -. 1.0) cells
    | None -> [ 0.0 ]
  in
  let s = ratios Macro.Ms_uni in
  let i = ratios Macro.Ms_idle in
  let b = ratios Macro.Ms_busy in
  { static_worst = worst s;
    static_mean = mean s;
    idle_worst = worst i;
    idle_mean = mean i;
    busy_worst = worst b;
    busy_mean = mean b }

let print_summary fmt results =
  let s = summarize results in
  Format.fprintf fmt "Overhead summary (vs. baseline BS):@.";
  Format.fprintf fmt
    "  MS static overhead:      worst %4.0f%%, mean %4.0f%%   (paper: < 15%% worst)@."
    (100. *. s.static_worst) (100. *. s.static_mean);
  Format.fprintf fmt
    "  MS + 4 idle Processes:   worst %4.0f%%, mean %4.0f%%   (paper: ~30%% worst)@."
    (100. *. s.idle_worst) (100. *. s.idle_mean);
  Format.fprintf fmt
    "  MS + 4 busy Processes:   worst %4.0f%%, mean %4.0f%%   (paper: ~65%% worst, ~40%% mean)@."
    (100. *. s.busy_worst) (100. *. s.busy_mean)

(* --- Tables 1 and 3 and Figure 1 are static content --- *)

let table1 = {raw|
Table 1: Process and interpreter relationships

                            Virtual image                  Interpreter
Execution process is        Smalltalk Process              lightweight process
Compiled code consists of   byte code                      machine code
Code is written in          Smalltalk                      OCaml (paper: C)
Code and data reside in     object memory                  address space
Execution is by             Smalltalk interpreter          machine processor
Execution scheduler is      Smalltalk ProcessorScheduler   V kernel (simulated)
|raw}

let table3 = {raw|
Table 3: Applications of the three strategies

Serialization        Replication       Reorganization
-------------        -----------       --------------
allocation           interpretation    active process
garbage collection   method caches
entry tables         free contexts
scheduling
I/O queues

Module map:
  allocation          lib/interp/ctx.ml (alloc lock), lib/objmem/heap.ml
  garbage collection  lib/objmem/scavenger.ml + lib/core/vm.ml (rendezvous)
  entry tables        lib/objmem/heap.ml (store_ptr) + State.store_with_check
  scheduling          lib/interp/scheduler.ml (one lock, one ready queue)
  I/O queues          lib/vkernel/devices.ml
  interpretation      lib/interp/interp.ml (one State.t per processor)
  method caches       lib/interp/method_cache.ml (Replicated)
  free contexts       lib/interp/free_contexts.ml (Replicated)
  active process      lib/interp/primitives.ml (93 thisProcess, 94 canRun:)
                      + scheduler keep_running_in_queue
|raw}

let figure1 = {raw|
Figure 1: Structure of the system (simulated Firefly)

  +-----------------------------------------------------------+
  |                  Smalltalk virtual image                   |
  |   compiler . browser tools . Processes . ProcessorScheduler|
  +============ primitive operations (protection) =============+
  |            MS virtual machine (one per processor)          |
  |  interpreter | method cache | free contexts | scheduler ops|
  |  object memory: eden | survivors | old  + entry table      |
  +============ kernel operations (protection) ================+
  |        simulated V kernel on the simulated Firefly         |
  |  spin-locks . Delay . IPC . display controller . input     |
  |  5 x microVAX (virtual processors w/ cycle clocks) . bus   |
  +-----------------------------------------------------------+
|raw}
