(* The macro benchmarks (after McCall's standard Smalltalk-80 benchmarks)
   and the four system states of the paper's evaluation:

     baseline BS          one interpreter, no multiprocessor support
     MS                   one interpreter, all strategies in place
     MS + 4 idle          five interpreters, four [[true] whileTrue] idlers
     MS + 4 busy          five interpreters, four sweep-hand analogues

   Each benchmark measures a typical programming-environment activity,
   implemented in Smalltalk and executed by the interpreter.  Repetition
   counts are fixed so the baseline column lands near the paper's Table 2
   (in simulated seconds at 1 MIPS); the interesting output is the
   overhead of the other three states. *)

type state = Baseline | Ms_uni | Ms_idle | Ms_busy

let state_name = function
  | Baseline -> "Baseline BS on multiprocessor"
  | Ms_uni -> "MS on multiprocessor"
  | Ms_idle -> "MS with four idle Processes"
  | Ms_busy -> "MS with four busy Processes"

let all_states = [ Baseline; Ms_uni; Ms_idle; Ms_busy ]

let config_of_state ?(config_tweak = fun c -> c) state =
  let base =
    match state with
    | Baseline -> Config.baseline_bs ()
    | Ms_uni -> Config.ms ~processors:1 ()
    | Ms_idle | Ms_busy -> Config.ms ~processors:5 ()
  in
  config_tweak base

(* Workload classes installed on top of the kernel for the benchmarks. *)
let benchmark_classes = {st|
CLASS BenchScratch SUPER Object IVARS a b c
METHODS BenchScratch
seed
    ^a
!

CLASS MacroBenchmarks SUPER Object IVARS classes
METHODS MacroBenchmarks
setUp
    classes := Array with: Point with: Association with: Interval
!
readAndWriteClassOrganization
    "build each class's organization text from its selectors, then parse
     it back into a dictionary of categories"
    | ws text rs word dict total |
    total := 0.
    classes do: [:cls |
        ws := WriteStream on: (String new: 64).
        cls selectors do: [:sel |
            ws nextPutAll: sel asString.
            ws space].
        text := ws contents.
        dict := Dictionary new.
        rs := ReadStream on: text.
        [rs atEnd] whileFalse: [
            word := rs upTo: $ .
            word isEmpty ifFalse: [
                dict at: word size put: word]].
        total := total + dict size].
    ^total
!
printClassDefinition
    | total |
    total := 0.
    classes do: [:cls | total := total + cls definitionString size].
    ^total
!
printClassHierarchy
    ^Magnitude hierarchyString size + Stream hierarchyString size
!
findAllCalls
    ^(Mirror sendersOf: #printString) size
!
findAllImplementors
    ^(Mirror implementorsOf: #printString) size
      + (Mirror implementorsOf: #do:) size
      + (Mirror implementorsOf: #size) size
      + (Mirror implementorsOf: #zork) size
!
createInspectorView
    | total |
    total := 0.
    total := total + (Inspector on: (Point x: 3 y: 4)) fieldCount.
    total := total + (Inspector on: #(1 2 3 4 5 6 7 8)) fieldCount.
    total := total + (Inspector on: (Interval from: 1 to: 9)) fieldCount.
    ^total
!
compileDummyMethod
    Mirror compile: 'dummy: x
    | t |
    t := x + 1.
    t > 0 ifTrue: [^t * 2].
    ^0' into: BenchScratch classSide: false.
    ^BenchScratch new dummy: 20
!
decompileClass
    | total |
    total := 0.
    Point selectors do: [:sel |
        total := total + (Point methodAt: sel) decompile size].
    Interval selectors do: [:sel |
        total := total + (Interval methodAt: sel) decompile size].
    ^total
!
|st}

type benchmark = {
  key : string;
  title : string;               (* the paper's column label *)
  body : string;                (* one iteration; [bench] is the receiver *)
  reps : int;                   (* repetitions per run *)
  paper : float array;          (* Table 2 row: BS, MS, idle, busy (seconds) *)
}

let benchmarks = [
  { key = "organization";
    title = "read and write class organization";
    body = "bench readAndWriteClassOrganization";
    reps = 31;
    paper = [| 14.3; 15.6; 16.3; 18.4 |] };
  { key = "definition";
    title = "print class definition";
    body = "bench printClassDefinition";
    reps = 22;
    paper = [| 8.1; 8.6; 8.8; 11.1 |] };
  { key = "hierarchy";
    title = "print class hierarchy";
    body = "bench printClassHierarchy";
    reps = 20;
    paper = [| 10.0; 11.4; 14.3; 16.4 |] };
  { key = "calls";
    title = "find all calls";
    body = "bench findAllCalls";
    reps = 18;
    paper = [| 26.0; 27.0; 27.0; 33.0 |] };
  { key = "implementors";
    title = "find all implementors";
    body = "bench findAllImplementors";
    reps = 6;
    paper = [| 8.2; 8.9; 9.0; 11.2 |] };
  { key = "inspector";
    title = "create inspector view";
    body = "bench createInspectorView";
    reps = 23;
    paper = [| 6.1; 6.7; 7.4; 10.0 |] };
  { key = "compile";
    title = "compile dummy method";
    body = "bench compileDummyMethod";
    reps = 746;
    paper = [| 22.0; 25.0; 27.0; 31.0 |] };
  { key = "decompile";
    title = "decompile class";
    body = "bench decompileClass";
    reps = 49;
    paper = [| 12.7; 14.1; 16.1; 18.2 |] };
]

(* --- running --- *)

type cell = {
  seconds : float;       (* simulated seconds for the timed run *)
  cycles : int;
  scavenges : int;
}

(* Prepare a VM in [state]: benchmark classes loaded, background Processes
   spawned (they start running during the first timed evaluation). *)
let prepare_vm ?config_tweak state =
  let vm = Vm.create (config_of_state ?config_tweak state) in
  Vm.load_classes vm benchmark_classes;
  (match state with
   | Baseline | Ms_uni -> ()
   | Ms_idle -> ignore (Workloads.spawn_idle vm 4)
   | Ms_busy -> ignore (Workloads.spawn_busy vm 4));
  vm

(* Run one benchmark on a prepared VM; returns the timed cell. *)
let run_on vm (b : benchmark) =
  let src =
    Printf.sprintf
      "| bench |\nbench := MacroBenchmarks new.\nbench setUp.\n%d timesRepeat: [%s].\n^0"
      b.reps b.body
  in
  let before_cycles = Vm.cycles vm in
  let before_scav = Heap.scavenge_count vm.Vm.heap in
  (match Vm.run ~watch:(Vm.spawn vm ~priority:5 ~name:b.key src) vm with
   | Vm.Finished _ -> ()
   | Vm.Deadlock -> failwith ("benchmark deadlocked: " ^ b.key)
   | Vm.Cycle_limit -> failwith ("benchmark ran away: " ^ b.key));
  let cycles = Vm.cycles vm - before_cycles in
  { seconds = Cost_model.seconds vm.Vm.config.Config.cost cycles;
    cycles;
    scavenges = Heap.scavenge_count vm.Vm.heap - before_scav }

(* Run the full Table 2: every benchmark in every state.  One VM per state,
   benchmarks run back to back (as the originals were). *)
let run_table2 ?config_tweak ?(states = all_states) ?(benchmarks = benchmarks) () =
  List.map
    (fun state ->
      let vm = prepare_vm ?config_tweak state in
      let cells = List.map (fun b -> (b, run_on vm b)) benchmarks in
      (state, cells))
    states
