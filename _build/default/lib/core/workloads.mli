(** The background Processes of the paper's evaluation (section 4).

    The idle Process is the literal [[true] whileTrue], compiled to a jump
    loop that neither looks up messages nor allocates memory — the minimum
    possible interference.  The busy Process is modelled on the "sweep
    hand" background Process: message sends, object allocation, and
    contention for the display. *)

val idle_source : string

val busy_source : string

(** Priority 2: below the benchmark's user scheduling priority. *)
val background_priority : int

(** Fork [count] idle/busy Processes; they run forever at background
    priority on whatever processors are free. *)
val spawn_idle : Vm.t -> int -> Oop.t list

val spawn_busy : Vm.t -> int -> Oop.t list
