(* The background Processes of the paper's evaluation (section 4).

   The idle Process is the literal [[true] whileTrue]: the compiler turns
   it into a jump loop that "neither looks up messages nor allocates
   memory", so it represents the minimum possible interference.

   The busy Process is modelled on the "sweep hand" background Process: it
   sends messages, allocates objects, and contends for the display. *)

let idle_source = "[true] whileTrue"

let busy_source = {st|
| i p sum scratch |
i := 0.
sum := 0.
[true] whileTrue: [
    i := i + 1.
    p := Point x: i y: i * 2.
    p := p + (Point x: 1 y: 1).
    scratch := Array new: 64.
    scratch at: 1 put: p.
    sum := sum + p x + p y.
    i \\ 2 = 0 ifTrue: [Display drawCommand: i].
    i \\ 512 = 0 ifTrue: [sum := 0]]
|st}

(* Background Processes run below the benchmark's user priority. *)
let background_priority = 2

let spawn_idle vm count =
  List.init count (fun i ->
      Vm.spawn vm ~priority:background_priority
        ~name:(Printf.sprintf "idle-%d" (i + 1))
        idle_source)

let spawn_busy vm count =
  List.init count (fun i ->
      Vm.spawn vm ~priority:background_priority
        ~name:(Printf.sprintf "busy-%d" (i + 1))
        busy_source)
