lib/core/instrumentation.ml: Array Devices Format Free_contexts Heap List Machine Method_cache Scheduler Spinlock State Vm
