lib/core/vm.mli: Config Heap Interp Machine Oop State Universe
