lib/core/config.ml: Cost_model
