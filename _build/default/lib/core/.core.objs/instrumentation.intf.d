lib/core/instrumentation.mli: Format Vm
