lib/core/workloads.ml: List Printf Vm
