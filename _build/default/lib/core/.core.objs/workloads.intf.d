lib/core/workloads.mli: Oop Vm
