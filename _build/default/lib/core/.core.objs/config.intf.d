lib/core/config.mli: Cost_model
