(** Bootstrapping the virtual image.

    Ties the metacircular knot: bare class objects for the VM-known
    classes are allocated first, [Class] is made an instance of itself,
    nil/true/false and the character table are instantiated, the
    ProcessorScheduler and its ready lists are built, and only then is the
    kernel compiled through the normal class builder (which recognises the
    pre-allocated classes by their global bindings). *)

(** Build a complete universe — kernel classes, globals, Transcript,
    Display, Processor — on the given heap. *)
val install : Heap.t -> Universe.t
