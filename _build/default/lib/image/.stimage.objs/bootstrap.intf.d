lib/image/bootstrap.mli: Heap Universe
