lib/image/method_mirror.mli: Ast Oop Opcode Universe
