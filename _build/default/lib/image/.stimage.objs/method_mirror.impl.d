lib/image/method_mirror.ml: Array Ast Decompiler Disasm Heap Layout List Oop Opcode Universe
