lib/image/bootstrap.ml: Class_builder Heap Kernel_sources Layout List Oop Universe
