lib/image/kernel_processes.ml:
