lib/image/kernel_collections.ml:
