lib/image/kernel_core.ml:
