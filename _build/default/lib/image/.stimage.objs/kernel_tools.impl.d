lib/image/kernel_tools.ml:
