(* Reading CompiledMethod heap objects back into compiler-level values:
   the adapter between the interpreter's decompile/browse primitives and
   the decompiler. *)

let bytecode_array u meth =
  let h = Universe.heap u in
  let bc = Heap.get h meth Layout.Method.bytecodes in
  Array.init (Heap.slots h (Oop.addr bc)) (fun i ->
      Opcode.decode (Heap.get h bc i))

let selector_name u meth =
  let h = Universe.heap u in
  Universe.symbol_name u (Heap.get h meth Layout.Method.selector)

let literal_count u meth =
  let h = Universe.heap u in
  Heap.slots h (Oop.addr meth) - Layout.Method.fixed_slots

let literal_oop u meth n =
  Heap.get (Universe.heap u) meth (Layout.Method.fixed_slots + n)

(* Render a literal oop as an AST literal (for the decompiler). *)
let rec literal_ast u (o : Oop.t) =
  let h = Universe.heap u in
  let c = u.Universe.classes in
  if Oop.is_small o then Ast.Lit_int (Oop.small_val o)
  else if Oop.equal o u.Universe.nil then Ast.Lit_nil
  else if Oop.equal o u.Universe.true_ then Ast.Lit_true
  else if Oop.equal o u.Universe.false_ then Ast.Lit_false
  else begin
    let cls = Heap.class_at h (Oop.addr o) in
    if Oop.equal cls c.Universe.symbol then
      Ast.Lit_symbol (Universe.symbol_name u o)
    else if Oop.equal cls c.Universe.string then
      Ast.Lit_string (Heap.string_value h o)
    else if Oop.equal cls c.Universe.character then
      Ast.Lit_char (Universe.char_value u o)
    else if Oop.equal cls c.Universe.float_c then
      Ast.Lit_float (Universe.float_value u o)
    else if Oop.equal cls c.Universe.array then
      Ast.Lit_array
        (List.init (Heap.slots h (Oop.addr o)) (fun i ->
             literal_ast u (Heap.get h o i)))
    else Ast.Lit_symbol "unknownLiteral"
  end

(* Printable name of a literal used as selector or global binding. *)
let literal_name u (o : Oop.t) =
  let h = Universe.heap u in
  let c = u.Universe.classes in
  if Oop.is_small o then string_of_int (Oop.small_val o)
  else begin
    let cls = Heap.class_at h (Oop.addr o) in
    if Oop.equal cls c.Universe.symbol then Universe.symbol_name u o
    else if Oop.equal cls c.Universe.association then
      Universe.symbol_name u (Heap.get h o Layout.Association.key)
    else "unknown"
  end

let decompile u meth =
  let h = Universe.heap u in
  let info = Oop.small_val (Heap.get h meth Layout.Method.info) in
  let decompiled =
    Decompiler.decompile_parts
      ~selector:(selector_name u meth)
      ~nargs:(Layout.Minfo.nargs info)
      ~ntemps:(Layout.Minfo.ntemps info)
      ~code:(bytecode_array u meth)
      ~literal:(fun n -> literal_ast u (literal_oop u meth n))
      ~selector_of:(fun n -> literal_name u (literal_oop u meth n))
  in
  Decompiler.to_source decompiled

let disassemble u meth =
  let h = Universe.heap u in
  let bc = Heap.get h meth Layout.Method.bytecodes in
  let code = Array.init (Heap.slots h (Oop.addr bc)) (fun i -> Heap.get h bc i) in
  Disasm.to_string ~literal:(fun n -> literal_name u (literal_oop u meth n)) code
