(* The kernel image, in load order: each part may reference classes
   defined in earlier parts. *)

let all = [
  Kernel_core.source;
  Kernel_collections.source;
  Kernel_processes.source;
  Kernel_tools.source;
]
