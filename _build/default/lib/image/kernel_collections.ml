(* Kernel classes, part 2: collections and streams. *)

let source = {st|
CLASS Collection SUPER Object CATEGORY Kernel-Collections
CLASS SequenceableCollection SUPER Collection CATEGORY Kernel-Collections
CLASS ArrayedCollection SUPER SequenceableCollection CATEGORY Kernel-Collections
CLASS Array SUPER ArrayedCollection FORMAT variable CATEGORY Kernel-Collections
CLASS String SUPER ArrayedCollection FORMAT bytes CATEGORY Kernel-Collections
CLASS Symbol SUPER String FORMAT bytes CATEGORY Kernel-Collections
CLASS Interval SUPER SequenceableCollection IVARS start stop step CATEGORY Kernel-Collections
CLASS OrderedCollection SUPER SequenceableCollection IVARS array firstIndex lastIndex CATEGORY Kernel-Collections
CLASS Dictionary SUPER Collection IVARS keyArray valueArray tally CATEGORY Kernel-Collections
CLASS Set SUPER Collection IVARS contents CATEGORY Kernel-Collections
CLASS Stream SUPER Object IVARS collection position CATEGORY Kernel-Streams
CLASS ReadStream SUPER Stream CATEGORY Kernel-Streams
CLASS WriteStream SUPER Stream CATEGORY Kernel-Streams

METHODS Collection
do: aBlock
    ^self subclassResponsibility
!
isEmpty
    ^self size = 0
!
notEmpty
    ^self isEmpty not
!
size
    | count |
    count := 0.
    self do: [:each | count := count + 1].
    ^count
!
includes: anObject
    self do: [:each | each = anObject ifTrue: [^true]].
    ^false
!
detect: aBlock ifNone: noneBlock
    self do: [:each | (aBlock value: each) ifTrue: [^each]].
    ^noneBlock value
!
detect: aBlock
    ^self detect: aBlock ifNone: [self error: 'element not found']
!
anySatisfy: aBlock
    self do: [:each | (aBlock value: each) ifTrue: [^true]].
    ^false
!
allSatisfy: aBlock
    self do: [:each | (aBlock value: each) ifFalse: [^false]].
    ^true
!
select: aBlock
    | result |
    result := OrderedCollection new.
    self do: [:each | (aBlock value: each) ifTrue: [result add: each]].
    ^result
!
reject: aBlock
    | result |
    result := OrderedCollection new.
    self do: [:each | (aBlock value: each) ifFalse: [result add: each]].
    ^result
!
collect: aBlock
    | result |
    result := OrderedCollection new.
    self do: [:each | result add: (aBlock value: each)].
    ^result
!
inject: thisValue into: binaryBlock
    | acc |
    acc := thisValue.
    self do: [:each | acc := binaryBlock value: acc value: each].
    ^acc
!
count: aBlock
    | n |
    n := 0.
    self do: [:each | (aBlock value: each) ifTrue: [n := n + 1]].
    ^n
!
asOrderedCollection
    | result |
    result := OrderedCollection new.
    self do: [:each | result add: each].
    ^result
!
asArray
    | result i |
    result := Array new: self size.
    i := 1.
    self do: [:each | result at: i put: each. i := i + 1].
    ^result
!
asSortedArray: lessBlock
    "insertion sort into a fresh Array"
    | arr current j |
    arr := self asArray.
    2 to: arr size do: [:i |
        current := arr at: i.
        j := i - 1.
        [j >= 1 and: [lessBlock value: current value: (arr at: j)]]
            whileTrue: [
                arr at: j + 1 put: (arr at: j).
                j := j - 1].
        arr at: j + 1 put: current].
    ^arr
!
asSortedArray
    ^self asSortedArray: [:a :b | a < b]
!
max
    ^self inject: (self detect: [:e | true]) into: [:a :b | a max: b]
!
min
    ^self inject: (self detect: [:e | true]) into: [:a :b | a min: b]
!
sum
    ^self inject: 0 into: [:a :b | a + b]
!
printString
    | ws |
    ws := WriteStream on: (String new: 16).
    ws nextPutAll: self class name asString.
    ws nextPutAll: ' ('.
    self do: [:each | ws print: each. ws space].
    ws nextPutAll: ')'.
    ^ws contents
!

METHODS SequenceableCollection
do: aBlock
    1 to: self size do: [:i | aBlock value: (self at: i)]
!
reverseDo: aBlock
    self size to: 1 by: -1 do: [:i | aBlock value: (self at: i)]
!
doWithIndex: aBlock
    1 to: self size do: [:i | aBlock value: (self at: i) value: i]
!
with: other do: aBlock
    1 to: self size do: [:i | aBlock value: (self at: i) value: (other at: i)]
!
first
    ^self at: 1
!
last
    ^self at: self size
!
indexOf: anObject
    1 to: self size do: [:i | (self at: i) = anObject ifTrue: [^i]].
    ^0
!
occurrencesOf: anObject
    ^self count: [:each | each = anObject]
!
replaceFrom: start to: stop with: other startingAt: repStart
    <primitive: 65>
    | i |
    i := 0.
    [i <= (stop - start)] whileTrue: [
        self at: start + i put: (other at: repStart + i).
        i := i + 1].
    ^self
!
copyFrom: start to: stop
    | result |
    stop < start ifTrue: [^self species new: 0].
    result := self species new: stop - start + 1.
    result replaceFrom: 1 to: stop - start + 1 with: self startingAt: start.
    ^result
!
copy
    ^self copyFrom: 1 to: self size
!
, aCollection
    | result |
    result := self species new: self size + aCollection size.
    result replaceFrom: 1 to: self size with: self startingAt: 1.
    result replaceFrom: self size + 1 to: result size
           with: aCollection startingAt: 1.
    ^result
!
reversed
    | result n |
    n := self size.
    result := self species new: n.
    1 to: n do: [:i | result at: n - i + 1 put: (self at: i)].
    ^result
!

METHODS ArrayedCollection
size
    <primitive: 62>
    ^0
!
add: anObject
    self error: 'arrayed collections have a fixed size'
!

CLASSMETHODS ArrayedCollection
new
    ^self basicNew: 0
!
new: size
    ^self basicNew: size
!
with: a
    | r |
    r := self new: 1.
    r at: 1 put: a.
    ^r
!
with: a with: b
    | r |
    r := self new: 2.
    r at: 1 put: a.
    r at: 2 put: b.
    ^r
!
with: a with: b with: c
    | r |
    r := self new: 3.
    r at: 1 put: a.
    r at: 2 put: b.
    r at: 3 put: c.
    ^r
!
with: a with: b with: c with: d
    | r |
    r := self new: 4.
    r at: 1 put: a.
    r at: 2 put: b.
    r at: 3 put: c.
    r at: 4 put: d.
    ^r
!
with: a with: b with: c with: d with: e
    | r |
    r := self new: 5.
    r at: 1 put: a.
    r at: 2 put: b.
    r at: 3 put: c.
    r at: 4 put: d.
    r at: 5 put: e.
    ^r
!

METHODS String
isString
    ^true
!
< aString
    | limit i |
    limit := self size min: aString size.
    i := 1.
    [i <= limit] whileTrue: [
        (self at: i) ~= (aString at: i)
            ifTrue: [^(self at: i) < (aString at: i)].
        i := i + 1].
    ^self size < aString size
!
<= aString
    ^(aString < self) not
!
> aString
    ^aString < self
!
>= aString
    ^(self < aString) not
!
= aString
    aString isString ifFalse: [^false].
    self size = aString size ifFalse: [^false].
    1 to: self size do: [:i |
        (self at: i) ~= (aString at: i) ifTrue: [^false]].
    ^true
!
hash
    | h |
    h := self size.
    1 to: (self size min: 6) do: [:i | h := h * 31 + (self at: i) asInteger].
    ^h
!
asString
    ^self
!
asSymbol
    <primitive: 75>
    self error: 'asSymbol failed'
!
asUppercase
    | r |
    r := String new: self size.
    1 to: self size do: [:i | r at: i put: (self at: i) asUppercase].
    ^r
!
asLowercase
    | r |
    r := String new: self size.
    1 to: self size do: [:i | r at: i put: (self at: i) asLowercase].
    ^r
!
startsWith: prefix
    prefix size > self size ifTrue: [^false].
    1 to: prefix size do: [:i |
        (self at: i) ~= (prefix at: i) ifTrue: [^false]].
    ^true
!
indexOfSubCollection: pattern
    | n m j found |
    n := self size.
    m := pattern size.
    m = 0 ifTrue: [^0].
    1 to: n - m + 1 do: [:i |
        found := true.
        j := 1.
        [j <= m and: [found]] whileTrue: [
            (self at: i + j - 1) ~= (pattern at: j) ifTrue: [found := false].
            j := j + 1].
        found ifTrue: [^i]].
    ^0
!
includesSubstring: pattern
    ^(self indexOfSubCollection: pattern) > 0
!
printString
    ^'''' , self , ''''
!
displayString
    ^self
!

CLASSMETHODS String
with: aCharacter
    | s |
    s := self new: 1.
    s at: 1 put: aCharacter.
    ^s
!
cr
    ^self with: Character cr
!

METHODS Symbol
isSymbol
    ^true
!
= anObject
    ^self == anObject
!
asSymbol
    ^self
!
asString
    <primitive: 76>
    self error: 'asString failed'
!
species
    ^String
!
printString
    ^'#' , self asString
!

METHODS Interval
setFrom: a to: b by: c
    start := a.
    stop := b.
    step := c
!
size
    step > 0
        ifTrue: [stop < start ifTrue: [^0]. ^stop - start // step + 1]
        ifFalse: [start < stop ifTrue: [^0]. ^start - stop // (0 - step) + 1]
!
at: index
    ^start + (step * (index - 1))
!
first
    ^start
!
last
    ^start + (step * (self size - 1))
!
do: aBlock
    | i |
    i := start.
    step > 0
        ifTrue: [[i <= stop] whileTrue: [aBlock value: i. i := i + step]]
        ifFalse: [[i >= stop] whileTrue: [aBlock value: i. i := i + step]]
!
collect: aBlock
    | result i |
    result := Array new: self size.
    i := 1.
    self do: [:v | result at: i put: (aBlock value: v). i := i + 1].
    ^result
!
includes: aNumber
    step > 0
        ifTrue: [(aNumber < start or: [aNumber > stop]) ifTrue: [^false]]
        ifFalse: [(aNumber > start or: [aNumber < stop]) ifTrue: [^false]].
    ^(aNumber - start \\ step) = 0
!
species
    ^Array
!

CLASSMETHODS Interval
from: a to: b
    ^self basicNew setFrom: a to: b by: 1
!
from: a to: b by: c
    ^self basicNew setFrom: a to: b by: c
!

METHODS OrderedCollection
initialize: capacity
    array := Array new: capacity.
    firstIndex := 1.
    lastIndex := 0
!
size
    ^lastIndex - firstIndex + 1
!
isEmpty
    ^lastIndex < firstIndex
!
at: index
    (index between: 1 and: self size)
        ifFalse: [self error: 'index out of bounds'].
    ^array at: firstIndex + index - 1
!
at: index put: anObject
    (index between: 1 and: self size)
        ifFalse: [self error: 'index out of bounds'].
    ^array at: firstIndex + index - 1 put: anObject
!
do: aBlock
    firstIndex to: lastIndex do: [:i | aBlock value: (array at: i)]
!
add: anObject
    ^self addLast: anObject
!
addLast: anObject
    lastIndex = array size ifTrue: [self makeRoom].
    lastIndex := lastIndex + 1.
    array at: lastIndex put: anObject.
    ^anObject
!
addFirst: anObject
    firstIndex = 1 ifTrue: [self makeRoom].
    firstIndex := firstIndex - 1.
    array at: firstIndex put: anObject.
    ^anObject
!
addAll: aCollection
    aCollection do: [:each | self addLast: each].
    ^aCollection
!
removeFirst
    | v |
    self isEmpty ifTrue: [self error: 'collection is empty'].
    v := array at: firstIndex.
    array at: firstIndex put: nil.
    firstIndex := firstIndex + 1.
    ^v
!
removeLast
    | v |
    self isEmpty ifTrue: [self error: 'collection is empty'].
    v := array at: lastIndex.
    array at: lastIndex put: nil.
    lastIndex := lastIndex - 1.
    ^v
!
remove: anObject ifAbsent: absentBlock
    | i |
    i := self indexOf: anObject.
    i = 0 ifTrue: [^absentBlock value].
    i to: self size - 1 do: [:j | self at: j put: (self at: j + 1)].
    self removeLast.
    ^anObject
!
makeRoom
    | bigger n |
    n := self size.
    bigger := Array new: (n * 2 max: 8).
    1 to: n do: [:i | bigger at: i + 1 put: (self at: i)].
    array := bigger.
    firstIndex := 2.
    lastIndex := n + 1
!
species
    ^Array
!

CLASSMETHODS OrderedCollection
new
    ^self basicNew initialize: 8
!
new: capacity
    ^self basicNew initialize: (capacity max: 1)
!

METHODS Dictionary
initDict: capacity
    keyArray := Array new: capacity.
    valueArray := Array new: capacity.
    tally := 0
!
size
    ^tally
!
privateIndexOf: aKey
    1 to: tally do: [:i | (keyArray at: i) = aKey ifTrue: [^i]].
    ^0
!
at: aKey ifAbsent: absentBlock
    | i |
    i := self privateIndexOf: aKey.
    i = 0 ifTrue: [^absentBlock value].
    ^valueArray at: i
!
at: aKey
    ^self at: aKey ifAbsent: [self error: 'key not found']
!
at: aKey put: aValue
    | i |
    i := self privateIndexOf: aKey.
    i > 0 ifTrue: [valueArray at: i put: aValue. ^aValue].
    tally = keyArray size ifTrue: [self growDict].
    tally := tally + 1.
    keyArray at: tally put: aKey.
    valueArray at: tally put: aValue.
    ^aValue
!
at: aKey ifAbsentPut: aBlock
    ^self at: aKey ifAbsent: [self at: aKey put: aBlock value]
!
includesKey: aKey
    ^(self privateIndexOf: aKey) > 0
!
removeKey: aKey ifAbsent: absentBlock
    | i v |
    i := self privateIndexOf: aKey.
    i = 0 ifTrue: [^absentBlock value].
    v := valueArray at: i.
    i to: tally - 1 do: [:j |
        keyArray at: j put: (keyArray at: j + 1).
        valueArray at: j put: (valueArray at: j + 1)].
    keyArray at: tally put: nil.
    valueArray at: tally put: nil.
    tally := tally - 1.
    ^v
!
growDict
    | biggerK biggerV |
    biggerK := Array new: (tally * 2 max: 8).
    biggerV := Array new: (tally * 2 max: 8).
    1 to: tally do: [:i |
        biggerK at: i put: (keyArray at: i).
        biggerV at: i put: (valueArray at: i)].
    keyArray := biggerK.
    valueArray := biggerV
!
do: aBlock
    1 to: tally do: [:i | aBlock value: (valueArray at: i)]
!
keysDo: aBlock
    1 to: tally do: [:i | aBlock value: (keyArray at: i)]
!
keysAndValuesDo: aBlock
    1 to: tally do: [:i |
        aBlock value: (keyArray at: i) value: (valueArray at: i)]
!
keys
    | result |
    result := Array new: tally.
    1 to: tally do: [:i | result at: i put: (keyArray at: i)].
    ^result
!
printString
    | ws |
    ws := WriteStream on: (String new: 16).
    ws nextPutAll: 'a Dictionary ('.
    self keysAndValuesDo: [:k :v |
        ws print: k.
        ws nextPutAll: '->'.
        ws print: v.
        ws space].
    ws nextPutAll: ')'.
    ^ws contents
!

CLASSMETHODS Dictionary
new
    ^self basicNew initDict: 8
!
new: capacity
    ^self basicNew initDict: (capacity max: 1)
!

METHODS Set
initSet
    contents := OrderedCollection new
!
size
    ^contents size
!
add: anObject
    (contents includes: anObject) ifFalse: [contents add: anObject].
    ^anObject
!
includes: anObject
    ^contents includes: anObject
!
remove: anObject ifAbsent: aBlock
    ^contents remove: anObject ifAbsent: aBlock
!
do: aBlock
    contents do: aBlock
!

CLASSMETHODS Set
new
    ^self basicNew initSet
!

METHODS Stream
collection
    ^collection
!
position
    ^position
!

METHODS ReadStream
on: aCollection
    collection := aCollection.
    position := 0
!
atEnd
    ^position >= collection size
!
next
    self atEnd ifTrue: [^nil].
    position := position + 1.
    ^collection at: position
!
peek
    self atEnd ifTrue: [^nil].
    ^collection at: position + 1
!
skip: count
    position := position + count min: collection size
!
upTo: anObject
    | start |
    start := position + 1.
    [self atEnd] whileFalse: [
        self next = anObject
            ifTrue: [^collection copyFrom: start to: position - 1]].
    ^collection copyFrom: start to: position
!
upToEnd
    | start |
    start := position + 1.
    position := collection size.
    ^collection copyFrom: start to: position
!

CLASSMETHODS ReadStream
on: aCollection
    | s |
    s := self basicNew.
    s on: aCollection.
    ^s
!

METHODS WriteStream
on: aCollection
    collection := aCollection.
    position := 0
!
nextPut: anObject
    position >= collection size ifTrue: [self growStream].
    position := position + 1.
    collection at: position put: anObject.
    ^anObject
!
nextPutAll: aCollection
    aCollection do: [:each | self nextPut: each].
    ^aCollection
!
print: anObject
    self nextPutAll: anObject printString
!
display: anObject
    self nextPutAll: anObject displayString
!
space
    self nextPut: Character space
!
tab
    self nextPut: Character tab
!
cr
    self nextPut: Character cr
!
contents
    ^collection copyFrom: 1 to: position
!
growStream
    | bigger |
    bigger := collection species new: (collection size * 2 max: 8).
    bigger replaceFrom: 1 to: collection size with: collection startingAt: 1.
    collection := bigger
!

CLASSMETHODS WriteStream
on: aCollection
    | s |
    s := self basicNew.
    s on: aCollection.
    ^s
!
|st}
