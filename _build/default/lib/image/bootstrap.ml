(* Bootstrapping the virtual image.

   The metacircular knot is tied here: bare class objects for every class
   the VM knows about are allocated first (with their fields zeroed), the
   class [Class] is made an instance of itself, and nil/true/false are
   instantiated — only then can symbols be interned and the kernel sources
   compiled through the normal class builder, which recognises the
   pre-allocated classes by their global bindings and keeps their
   identity. *)

let proto_class h =
  Heap.alloc_old h ~slots:Layout.Class.fixed_slots ~raw:false
    ~cls:Oop.sentinel ()

let install heap =
  let u = Universe.create heap in
  let c = u.Universe.classes in
  (* 1. bare class objects for the VM-known classes *)
  let protos = [
    ("Object", fun o -> c.Universe.object_c <- o);
    ("UndefinedObject", fun o -> c.Universe.undefined_object <- o);
    ("Boolean", fun o -> c.Universe.boolean <- o);
    ("True", fun o -> c.Universe.true_c <- o);
    ("False", fun o -> c.Universe.false_c <- o);
    ("SmallInteger", fun o -> c.Universe.small_integer <- o);
    ("Float", fun o -> c.Universe.float_c <- o);
    ("Character", fun o -> c.Universe.character <- o);
    ("String", fun o -> c.Universe.string <- o);
    ("Symbol", fun o -> c.Universe.symbol <- o);
    ("Array", fun o -> c.Universe.array <- o);
    ("Association", fun o -> c.Universe.association <- o);
    ("CompiledMethod", fun o -> c.Universe.compiled_method <- o);
    ("MethodDictionary", fun o -> c.Universe.method_dictionary <- o);
    ("MethodContext", fun o -> c.Universe.method_context <- o);
    ("BlockContext", fun o -> c.Universe.block_context <- o);
    ("Process", fun o -> c.Universe.process <- o);
    ("Semaphore", fun o -> c.Universe.semaphore <- o);
    ("LinkedList", fun o -> c.Universe.linked_list <- o);
    ("ProcessorScheduler", fun o -> c.Universe.processor_scheduler <- o);
    ("Class", fun o -> c.Universe.class_c <- o);
    ("Message", fun o -> c.Universe.message <- o);
  ] in
  let class_oops =
    List.map
      (fun (name, assign) ->
        let o = proto_class heap in
        assign o;
        (name, o))
      protos
  in
  (* every class, including Class, is an instance of Class *)
  List.iter
    (fun (_, o) -> Heap.set_class heap (Oop.addr o) c.Universe.class_c)
    class_oops;
  (* 2. nil, true, false *)
  u.Universe.nil <-
    Heap.alloc_old heap ~slots:0 ~raw:false ~cls:c.Universe.undefined_object ();
  Heap.set_nil heap u.Universe.nil;
  u.Universe.true_ <-
    Heap.alloc_old heap ~slots:0 ~raw:false ~cls:c.Universe.true_c ();
  u.Universe.false_ <-
    Heap.alloc_old heap ~slots:0 ~raw:false ~cls:c.Universe.false_c ();
  (* 3. symbols and characters can now exist *)
  Universe.init_char_table u;
  (* 4. bind the protos as globals so the class builder keeps identity *)
  List.iter (fun (name, o) -> Universe.set_global u name o) class_oops;
  Universe.register_context_classes u;
  (* 5. the ProcessorScheduler instance and its ready lists *)
  let new_linked_list () =
    let o =
      Heap.alloc_old heap ~slots:Layout.Linked_list.fixed_slots ~raw:false
        ~cls:c.Universe.linked_list ()
    in
    ignore (Heap.store_ptr heap o Layout.Linked_list.first u.Universe.nil);
    ignore (Heap.store_ptr heap o Layout.Linked_list.last u.Universe.nil);
    o
  in
  let ready =
    Universe.new_array u
      (List.init Layout.Scheduler.priorities (fun _ -> new_linked_list ()))
  in
  let scheduler =
    Heap.alloc_old heap ~slots:Layout.Scheduler.fixed_slots ~raw:false
      ~cls:c.Universe.processor_scheduler ()
  in
  ignore (Heap.store_ptr heap scheduler Layout.Scheduler.ready_lists ready);
  ignore
    (Heap.store_ptr heap scheduler Layout.Scheduler.active_process
       u.Universe.nil);
  u.Universe.scheduler <- scheduler;
  Universe.set_global u "Processor" scheduler;
  (* 6. compile the kernel *)
  List.iter
    (fun source -> Class_builder.load u source)
    Kernel_sources.all;
  (* 7. service objects bound to globals *)
  let instance_of name =
    match Universe.find_class u name with
    | Some cls ->
        Heap.alloc_old heap
          ~slots:(Oop.small_val (Heap.get heap cls Layout.Class.inst_size))
          ~raw:false ~cls ()
    | None -> failwith ("bootstrap: kernel class missing: " ^ name)
  in
  Universe.set_global u "Transcript" (instance_of "TranscriptStream");
  Universe.set_global u "Display" (instance_of "DisplayScreen");
  u
