(* Kernel classes, part 1: Object, Booleans, Magnitudes, Numbers,
   Characters, Associations.  Written in the image-definition format and
   compiled at bootstrap. *)

let source = {st|
CLASS Object CATEGORY Kernel-Objects
CLASS UndefinedObject SUPER Object CATEGORY Kernel-Objects
CLASS Boolean SUPER Object CATEGORY Kernel-Objects
CLASS True SUPER Boolean CATEGORY Kernel-Objects
CLASS False SUPER Boolean CATEGORY Kernel-Objects
CLASS Magnitude SUPER Object CATEGORY Kernel-Magnitudes
CLASS Character SUPER Magnitude FORMAT words CATEGORY Kernel-Magnitudes
CLASS Number SUPER Magnitude CATEGORY Kernel-Numbers
CLASS Integer SUPER Number CATEGORY Kernel-Numbers
CLASS SmallInteger SUPER Integer CATEGORY Kernel-Numbers
CLASS Float SUPER Number FORMAT words CATEGORY Kernel-Numbers
CLASS Link SUPER Object IVARS nextLink CATEGORY Kernel-Processes
CLASS Association SUPER Object IVARS key value CATEGORY Kernel-Objects
CLASS Message SUPER Object IVARS selector arguments CATEGORY Kernel-Objects

METHODS Object
class
    <primitive: 70>
    self error: 'class failed'
!
== anObject
    <primitive: 16>
    self error: 'identity failed'
!
= anObject
    ^self == anObject
!
~= anObject
    ^(self = anObject) not
!
~~ anObject
    ^(self == anObject) not
!
hash
    <primitive: 71>
    ^0
!
identityHash
    <primitive: 71>
    ^0
!
isNil
    ^false
!
notNil
    ^true
!
ifNil: aBlock
    ^self
!
ifNotNil: aBlock
    ^aBlock value: self
!
isString
    ^false
!
isSymbol
    ^false
!
isNumber
    ^false
!
isClass
    ^false
!
yourself
    ^self
!
-> anObject
    ^Association key: self value: anObject
!
species
    ^self class
!
basicSize
    <primitive: 62>
    ^0
!
size
    <primitive: 62>
    self error: 'not indexable'
!
at: index
    <primitive: 60>
    self error: 'at: index out of bounds'
!
at: index put: anObject
    <primitive: 61>
    self error: 'at:put: index out of bounds'
!
instVarAt: index
    <primitive: 73>
    self error: 'instVarAt: out of bounds'
!
instVarAt: index put: anObject
    <primitive: 74>
    self error: 'instVarAt:put: out of bounds'
!
error: aString
    <primitive: 120>
!
perform: aSelector
    <primitive: 135>
    self error: 'perform: failed'
!
perform: aSelector with: argument
    <primitive: 136>
    self error: 'perform:with: failed'
!
perform: aSelector with: first with: second
    <primitive: 137>
    self error: 'perform:with:with: failed'
!
doesNotUnderstand: aMessage
    self error: 'doesNotUnderstand: ' , aMessage selector asString
!
subclassResponsibility
    self error: 'subclass responsibility'
!
printString
    ^'a ' , self class name asString
!
displayString
    ^self printString
!
isKindOf: aClass
    | cls |
    cls := self class.
    [cls isNil] whileFalse: [
        cls == aClass ifTrue: [^true].
        cls := cls superclass].
    ^false
!
isMemberOf: aClass
    ^self class == aClass
!
respondsTo: aSelector
    | cls |
    cls := self class.
    [cls isNil] whileFalse: [
        (Mirror methodAt: aSelector in: cls classSide: false) notNil
            ifTrue: [^true].
        cls := cls superclass].
    ^false
!
copy
    ^self shallowCopy
!
shallowCopy
    | cls inst indexed new i |
    cls := self class.
    inst := cls instSize.
    indexed := self basicSize.
    new := indexed = 0
        ifTrue: [cls basicNew]
        ifFalse: [cls basicNew: indexed].
    i := 1.
    [i <= inst] whileTrue: [
        new instVarAt: i put: (self instVarAt: i).
        i := i + 1].
    i := 1.
    [i <= indexed] whileTrue: [
        new at: i put: (self at: i).
        i := i + 1].
    ^new
!
value
    ^self
!

CLASSMETHODS Object
new
    ^self basicNew
!
new: anInteger
    ^self basicNew: anInteger
!
basicNew
    <primitive: 68>
    self error: 'cannot instantiate'
!
basicNew: anInteger
    <primitive: 69>
    self error: 'cannot instantiate with size'
!

METHODS UndefinedObject
isNil
    ^true
!
notNil
    ^false
!
ifNil: aBlock
    ^aBlock value
!
ifNotNil: aBlock
    ^self
!
printString
    ^'nil'
!

METHODS Boolean
xor: aBoolean
    ^(self == aBoolean) not
!

METHODS True
not
    ^false
!
& aBoolean
    ^aBoolean
!
| aBoolean
    ^true
!
and: aBlock
    ^aBlock value
!
or: aBlock
    ^true
!
ifTrue: aBlock
    ^aBlock value
!
ifFalse: aBlock
    ^nil
!
ifTrue: trueBlock ifFalse: falseBlock
    ^trueBlock value
!
ifFalse: falseBlock ifTrue: trueBlock
    ^trueBlock value
!
printString
    ^'true'
!

METHODS False
not
    ^true
!
& aBoolean
    ^false
!
| aBoolean
    ^aBoolean
!
and: aBlock
    ^false
!
or: aBlock
    ^aBlock value
!
ifTrue: aBlock
    ^nil
!
ifFalse: aBlock
    ^aBlock value
!
ifTrue: trueBlock ifFalse: falseBlock
    ^falseBlock value
!
ifFalse: falseBlock ifTrue: trueBlock
    ^falseBlock value
!
printString
    ^'false'
!

METHODS Magnitude
< aMagnitude
    ^self subclassResponsibility
!
> aMagnitude
    ^aMagnitude < self
!
<= aMagnitude
    ^(aMagnitude < self) not
!
>= aMagnitude
    ^(self < aMagnitude) not
!
between: min and: max
    ^self >= min and: [self <= max]
!
min: aMagnitude
    ^self < aMagnitude ifTrue: [self] ifFalse: [aMagnitude]
!
max: aMagnitude
    ^self > aMagnitude ifTrue: [self] ifFalse: [aMagnitude]
!

METHODS Number
isNumber
    ^true
!
abs
    ^self < 0 ifTrue: [self negated] ifFalse: [self]
!
negated
    ^0 - self
!
squared
    ^self * self
!
isZero
    ^self = 0
!
sign
    self > 0 ifTrue: [^1].
    self < 0 ifTrue: [^-1].
    ^0
!
to: stop
    ^Interval from: self to: stop
!
to: stop by: step
    ^Interval from: self to: stop by: step
!
to: stop do: aBlock
    | i |
    i := self.
    [i <= stop] whileTrue: [
        aBlock value: i.
        i := i + 1].
    ^self
!
to: stop by: step do: aBlock
    | i |
    i := self.
    step > 0
        ifTrue: [[i <= stop] whileTrue: [aBlock value: i. i := i + step]]
        ifFalse: [[i >= stop] whileTrue: [aBlock value: i. i := i + step]].
    ^self
!

METHODS Integer
even
    ^(self \\ 2) = 0
!
odd
    ^(self \\ 2) = 1
!
timesRepeat: aBlock
    | i |
    i := 1.
    [i <= self] whileTrue: [
        aBlock value.
        i := i + 1].
    ^self
!
factorial
    self < 2 ifTrue: [^1].
    ^self * (self - 1) factorial
!
gcd: anInteger
    | a b t |
    a := self abs.
    b := anInteger abs.
    [b = 0] whileFalse: [
        t := b.
        b := a \\ b.
        a := t].
    ^a
!
isPrime
    | i |
    self < 2 ifTrue: [^false].
    self < 4 ifTrue: [^true].
    self even ifTrue: [^false].
    i := 3.
    [i * i <= self] whileTrue: [
        (self \\ i) = 0 ifTrue: [^false].
        i := i + 2].
    ^true
!
printString
    | n count s |
    self = 0 ifTrue: [^'0'].
    self < 0 ifTrue: [^'-' , self negated printString].
    n := self.
    count := 0.
    [n > 0] whileTrue: [count := count + 1. n := n // 10].
    s := String new: count.
    n := self.
    [count > 0] whileTrue: [
        s at: count put: (Character value: 48 + (n \\ 10)).
        n := n // 10.
        count := count - 1].
    ^s
!
printStringRadix: base
    | n count s d |
    self = 0 ifTrue: [^'0'].
    self < 0 ifTrue: [^'-' , (self negated printStringRadix: base)].
    n := self.
    count := 0.
    [n > 0] whileTrue: [count := count + 1. n := n // base].
    s := String new: count.
    n := self.
    [count > 0] whileTrue: [
        d := n \\ base.
        d < 10
            ifTrue: [s at: count put: (Character value: 48 + d)]
            ifFalse: [s at: count put: (Character value: 55 + d)].
        n := n // base.
        count := count - 1].
    ^s
!

METHODS SmallInteger
+ aNumber
    <primitive: 1>
    ^self asFloat + aNumber
!
- aNumber
    <primitive: 2>
    ^self asFloat - aNumber
!
< aNumber
    <primitive: 3>
    ^self asFloat < aNumber
!
> aNumber
    <primitive: 4>
    ^aNumber < self asFloat
!
<= aNumber
    <primitive: 5>
    ^(aNumber < self asFloat) not
!
>= aNumber
    <primitive: 6>
    ^(self asFloat < aNumber) not
!
= aNumber
    <primitive: 7>
    ^false
!
~= aNumber
    <primitive: 8>
    ^true
!
* aNumber
    <primitive: 9>
    ^self asFloat * aNumber
!
// aNumber
    <primitive: 10>
    self error: 'division by zero'
!
\\ aNumber
    <primitive: 11>
    self error: 'division by zero'
!
/ aNumber
    <primitive: 17>
    aNumber = 0 ifTrue: [self error: 'division by zero'].
    ^self asFloat / aNumber
!
bitAnd: anInteger
    <primitive: 12>
    self error: 'bitAnd: failed'
!
bitOr: anInteger
    <primitive: 13>
    self error: 'bitOr: failed'
!
bitXor: anInteger
    <primitive: 14>
    self error: 'bitXor: failed'
!
bitShift: anInteger
    <primitive: 15>
    self error: 'bitShift: failed'
!
asFloat
    <primitive: 48>
    self error: 'asFloat failed'
!
asInteger
    ^self
!
asCharacter
    ^Character value: self
!
hash
    ^self
!

METHODS Float
+ aNumber
    <primitive: 41>
    self error: 'float addition failed'
!
- aNumber
    <primitive: 42>
    self error: 'float subtraction failed'
!
< aNumber
    <primitive: 43>
    self error: 'float comparison failed'
!
* aNumber
    <primitive: 44>
    self error: 'float multiplication failed'
!
/ aNumber
    <primitive: 45>
    self error: 'float division by zero'
!
= aNumber
    <primitive: 46>
    ^false
!
truncated
    <primitive: 47>
    self error: 'truncated failed'
!
asInteger
    ^self truncated
!
asFloat
    ^self
!
rounded
    ^(self + 0.5) truncated
!
printString
    <primitive: 49>
    ^'aFloat'
!

METHODS Character
asInteger
    <primitive: 141>
    self error: 'asInteger failed'
!
value
    ^self asInteger
!
< aCharacter
    ^self asInteger < aCharacter asInteger
!
= aCharacter
    ^self == aCharacter
!
hash
    ^self asInteger
!
isDigit
    ^self asInteger between: 48 and: 57
!
isUppercase
    ^self asInteger between: 65 and: 90
!
isLowercase
    ^self asInteger between: 97 and: 122
!
isLetter
    ^self isUppercase or: [self isLowercase]
!
isVowel
    ^'aeiouAEIOU' includes: self
!
isSeparator
    | v |
    v := self asInteger.
    ^(v = 32) | (v = 9) | (v = 10) | (v = 13)
!
asUppercase
    ^self isLowercase
        ifTrue: [Character value: self asInteger - 32]
        ifFalse: [self]
!
asLowercase
    ^self isUppercase
        ifTrue: [Character value: self asInteger + 32]
        ifFalse: [self]
!
printString
    ^'$' , (String with: self)
!
asString
    ^String with: self
!

CLASSMETHODS Character
value: anInteger
    <primitive: 140>
    self error: 'character code out of range'
!
cr
    ^Character value: 10
!
tab
    ^Character value: 9
!
space
    ^Character value: 32
!

METHODS Association
key
    ^key
!
value
    ^value
!
key: anObject
    key := anObject
!
value: anObject
    value := anObject
!
printString
    ^key printString , ' -> ' , value printString
!

CLASSMETHODS Association
key: aKey value: aValue
    | a |
    a := self new.
    a key: aKey.
    a value: aValue.
    ^a
!

METHODS Link
nextLink
    ^nextLink
!
nextLink: aLink
    nextLink := aLink
!

METHODS Message
selector
    ^selector
!
arguments
    ^arguments
!
|st}
