(** Reading CompiledMethod heap objects back into compiler-level values:
    the adapter between the interpreter's decompile/browse primitives and
    the decompiler. *)

val bytecode_array : Universe.t -> Oop.t -> Opcode.t array

val selector_name : Universe.t -> Oop.t -> string

val literal_count : Universe.t -> Oop.t -> int

val literal_oop : Universe.t -> Oop.t -> int -> Oop.t

(** Render a literal oop as an AST literal. *)
val literal_ast : Universe.t -> Oop.t -> Ast.literal

(** Printable name of a literal used as a selector or global binding. *)
val literal_name : Universe.t -> Oop.t -> string

(** Decompile a CompiledMethod back to source text.
    @raise Decompiler.Unsupported on bytecode the generator never emits. *)
val decompile : Universe.t -> Oop.t -> string

(** Disassembly listing with resolved literal names. *)
val disassemble : Universe.t -> Oop.t -> string
