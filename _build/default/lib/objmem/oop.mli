(** Object pointers (oops).

    Berkeley Smalltalk eliminated the object table, so an oop refers to its
    object directly.  The classic tagged representation is used: bit 0 set
    marks a SmallInteger whose value occupies the remaining bits; bit 0
    clear marks a pointer whose word address is [oop asr 1]. *)

type t = int

(** The OCaml-side null: a pointer to the reserved word address 0, which
    never holds an object.  Distinct from Smalltalk's [nil], which is an
    ordinary heap object. *)
val sentinel : t

(** [of_small v] tags the integer [v] as a SmallInteger oop. *)
val of_small : int -> t

val is_small : t -> bool

(** [small_val o] untags a SmallInteger oop. *)
val small_val : t -> int

(** [of_addr a] makes a pointer oop for the word address [a]. *)
val of_addr : int -> t

val is_ptr : t -> bool

(** [addr o] is the word address of a pointer oop. *)
val addr : t -> int

(** Bounds of the SmallInteger range (62 bits on a 64-bit host); the
    arithmetic primitives fail outside them. *)
val max_small : int

val min_small : int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
