(** Generation Scavenging (Ungar '84), as used by Berkeley Smalltalk.

    A stop-and-copy collection of new space only: live new objects are
    copied from eden and the past survivor space into the future survivor
    space (Cheney's algorithm); objects that have survived [tenure_age]
    scavenges, or that overflow the survivor space, are promoted into old
    space.  Old space is never collected; the entry table supplies the
    old-to-new roots.  Context frames are scanned only up to their stack
    pointers.

    The caller is responsible for the multiprocessor rendezvous: every
    interpreter must be parked before [scavenge] runs, and the
    [on_scavenge] hooks flush the method caches and free-context lists. *)

(** Fields of the object at the given address that must be scanned
    (0 for raw objects; bounded by the stack pointer for contexts). *)
val scan_limit : Heap.t -> int -> int

(** Run one scavenge; returns its statistics.
    @raise Heap.Image_full when promotion exhausts old space. *)
val scavenge : Heap.t -> Heap.scavenge_stats

(** Cycle cost of a scavenge under the cost model; the engine charges it
    to every parked processor (the collection is stop-the-world). *)
val cost : Cost_model.t -> Heap.scavenge_stats -> int

(** The paper's section-3.1 suggestion: the copying work divides across
    [workers]; root and entry-table scanning stays serial, and each extra
    worker adds a coordination cost. *)
val cost_parallel : Cost_model.t -> Heap.scavenge_stats -> workers:int -> int
