(* Object pointers (oops).

   Berkeley Smalltalk eliminated the object table, so an oop is a direct
   reference.  We use the classic tagged representation:

   - bit 0 set: a SmallInteger, value in the remaining bits;
   - bit 0 clear: a pointer, whose word address is [oop asr 1].

   Word address 0 is reserved and never holds an object, so the oop [0] can
   serve as an OCaml-side sentinel (it is not Smalltalk's [nil], which is an
   ordinary heap object). *)

type t = int

let sentinel : t = 0

let of_small v = (v lsl 1) lor 1
let is_small (o : t) = o land 1 = 1
let small_val (o : t) = o asr 1

let of_addr a = a lsl 1
let is_ptr (o : t) = o land 1 = 0
let addr (o : t) = o asr 1

(* Range of SmallInteger: 62 bits on a 64-bit host; overflow checks in the
   arithmetic primitives use these bounds. *)
let max_small = max_int asr 1
let min_small = min_int asr 1

let equal (a : t) (b : t) = a = b

let pp fmt (o : t) =
  if is_small o then Format.fprintf fmt "i%d" (small_val o)
  else Format.fprintf fmt "@@%d" (addr o)
