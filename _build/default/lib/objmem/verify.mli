(** Heap consistency checking for the test suite and the property tests.

    Walks every allocated object and checks structural invariants:
    headers tile each space exactly; every scanned pointer field refers to
    a valid object (or is a SmallInteger); no live object is marked
    forwarded outside a scavenge; the store-check invariant (every old
    object with a new-space reference in a scanned field is remembered);
    and every remembered flag has an entry-table entry. *)

type problem = { addr : int; what : string }

val pp_problem : Format.formatter -> problem -> unit

(** The empty list means the heap is consistent. *)
val check : Heap.t -> problem list
