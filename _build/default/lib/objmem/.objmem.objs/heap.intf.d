lib/objmem/heap.mli: Oop
