lib/objmem/heap.ml: Array Char Layout List Oop String
