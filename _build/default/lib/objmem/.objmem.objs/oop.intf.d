lib/objmem/oop.mli: Format
