lib/objmem/universe.mli: Hashtbl Heap Oop
