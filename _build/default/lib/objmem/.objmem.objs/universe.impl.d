lib/objmem/universe.ml: Array Char Hashtbl Heap Int64 Layout List Oop String
