lib/objmem/scavenger.mli: Cost_model Heap
