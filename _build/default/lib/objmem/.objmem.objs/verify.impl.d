lib/objmem/verify.ml: Array Format Hashtbl Heap Layout List Oop Printf Scavenger
