lib/objmem/layout.ml:
