lib/objmem/scavenger.ml: Array Cost_model Heap Layout List Oop
