lib/objmem/oop.ml: Format
