lib/objmem/verify.mli: Format Heap
