(* Generation Scavenging (Ungar '84), as used by Berkeley Smalltalk: a
   stop-and-copy collection of new space only.  Live new objects are copied
   from eden and the past survivor space into the future survivor space
   (Cheney's algorithm); objects that have survived [tenure_age] scavenges,
   or that overflow the survivor space, are promoted into old space.  Old
   space is never collected; the entry table (remembered set) supplies the
   old-to-new roots.

   Because contexts keep their evaluation stack inside the object, only the
   live portion — [stackp] frame slots — is scanned; the slots above the
   stack pointer hold stale oops from popped values.

   The caller (the engine) is responsible for the multiprocessor rendezvous:
   every interpreter must be parked before [scavenge] runs, and the
   [on_scavenge] hooks flush the method caches and free-context lists whose
   entries would otherwise dangle across the copy. *)

open Heap

let is_context h cls =
  Oop.equal cls h.method_ctx_class || Oop.equal cls h.block_ctx_class

(* Number of fields of the object at [a] the scavenger must scan. *)
let scan_limit h a =
  if is_raw h a then 0
  else begin
    let n = slots h a in
    if is_context h (class_at h a) then begin
      let sp = h.mem.(a + Layout.header_words + Layout.Ctx.stackp) in
      let live = Layout.Ctx.fixed_slots + (if Oop.is_small sp then Oop.small_val sp else 0) in
      min n live
    end else n
  end

type space_choice = To_space | Promoted

(* Copy the object at [from_addr]; returns its new oop. *)
let copy_object h stats to_region from_addr =
  let total = size_words h from_addr in
  let next_age = min (age h from_addr + 1) Layout.age_mask in
  let choice =
    if next_age >= h.tenure_age || region_avail to_region < total
    then Promoted else To_space
  in
  let dest =
    match choice with
    | To_space ->
        let a = to_region.ptr in
        to_region.ptr <- to_region.ptr + total;
        stats.survivor_objects <- stats.survivor_objects + 1;
        stats.survivor_words <- stats.survivor_words + total;
        a
    | Promoted ->
        if region_avail h.old < total then
          raise (Image_full "old space exhausted during scavenge");
        let a = h.old.ptr in
        h.old.ptr <- h.old.ptr + total;
        stats.tenured_objects <- stats.tenured_objects + 1;
        stats.tenured_words <- stats.tenured_words + total;
        a
  in
  Array.blit h.mem from_addr h.mem dest total;
  (* refresh age; clear the remembered flag on the copy (re-established by
     the post-scan check for promoted objects) *)
  let flags =
    h.mem.(dest) land (Layout.flag_raw lor Layout.flag_bytes)
  in
  h.mem.(dest) <-
    (total lsl Layout.size_shift) lor (next_age lsl Layout.age_shift) lor flags;
  (* install forwarding *)
  let new_oop = Oop.of_addr dest in
  h.mem.(from_addr) <- Layout.forwarded_marker;
  h.mem.(from_addr + 1) <- new_oop;
  new_oop

(* Only objects in from-space — eden and the past survivor space — are
   copied; pointers into the future survivor space (already copied this
   scavenge) or old space pass through unchanged. *)
let forward h stats ~in_from to_region (o : Oop.t) =
  if not (Oop.is_ptr o) then o
  else begin
    let a = Oop.addr o in
    if not (in_from a) then o
    else if h.mem.(a) = Layout.forwarded_marker then h.mem.(a + 1)
    else copy_object h stats to_region a
  end

(* Update every scannable field of the object at [a]; returns true if any
   field still refers to new space after forwarding. *)
let update_fields h stats ~in_from to_region a =
  let limit = scan_limit h a in
  let base = a + Layout.header_words in
  let has_new = ref false in
  for i = 0 to limit - 1 do
    let v = h.mem.(base + i) in
    if is_new h v then begin
      let v' = forward h stats ~in_from to_region v in
      h.mem.(base + i) <- v';
      if is_new h v' then has_new := true
    end
  done;
  !has_new

let scavenge h =
  List.iter (fun hook -> hook ()) h.on_scavenge;
  let stats = empty_stats () in
  let to_region = if h.past_is_a then h.surv_b else h.surv_a in
  let past = if h.past_is_a then h.surv_a else h.surv_b in
  let in_from a =
    (a >= h.eden.base && a < h.eden.limit)
    || (a >= past.base && a < past.limit)
  in
  to_region.ptr <- to_region.base;
  let promote_start = h.old.ptr in
  (* 1. roots *)
  List.iter
    (fun cell ->
      stats.roots_scanned <- stats.roots_scanned + 1;
      cell := forward h stats ~in_from to_region !cell)
    h.roots;
  List.iter
    (fun arr ->
      for i = 0 to Array.length arr - 1 do
        stats.roots_scanned <- stats.roots_scanned + 1;
        arr.(i) <- forward h stats ~in_from to_region arr.(i)
      done)
    h.array_roots;
  (* 2. the entry table: update old objects' fields, keeping only entries
     that still refer to new space.  [remember] may reallocate the array,
     so iterate over a snapshot. *)
  let old_rset = h.rset in
  let old_rset_len = h.rset_len in
  h.rset_len <- 0;
  for i = 0 to old_rset_len - 1 do
    let a = old_rset.(i) in
    stats.remembered_scanned <- stats.remembered_scanned + 1;
    (* clear the flag; [remember] below re-sets it if needed *)
    h.mem.(a) <- h.mem.(a) land lnot Layout.flag_remembered;
    if update_fields h stats ~in_from to_region a then remember h a
  done;
  (* 3. Cheney scan of the two gray regions: fresh survivors and objects
     promoted during this scavenge *)
  let to_scan = ref to_region.base in
  let old_scan = ref promote_start in
  let progress = ref true in
  while !progress do
    progress := false;
    while !to_scan < to_region.ptr do
      progress := true;
      let a = !to_scan in
      ignore (update_fields h stats ~in_from to_region a);
      to_scan := a + size_words h a
    done;
    while !old_scan < h.old.ptr do
      progress := true;
      let a = !old_scan in
      if update_fields h stats ~in_from to_region a then remember h a;
      old_scan := a + size_words h a
    done
  done;
  (* 4. flip *)
  h.past_is_a <- not h.past_is_a;
  h.eden.ptr <- h.eden.base;
  Array.iter (fun r -> r.ptr <- r.base) h.eden_regions;
  h.scavenge_count <- h.scavenge_count + 1;
  h.words_copied_total <- h.words_copied_total + stats.survivor_words;
  h.tenured_words_total <- h.tenured_words_total + stats.tenured_words;
  h.last_scavenge <- stats;
  stats

(* Cycle cost of a scavenge under the cost model; charged to every parked
   processor by the engine (the collection is stop-the-world). *)
let cost (cm : Cost_model.t) (stats : scavenge_stats) =
  cm.scavenge_base
  + (cm.scavenge_per_word * (stats.survivor_words + stats.tenured_words))
  + (cm.scavenge_per_remembered * stats.remembered_scanned)

(* Applying multiple processors to the scavenging operation (the paper's
   section 3.1 suggestion).  The copying work divides across [workers];
   root and entry-table scanning stays serial, and each extra worker adds
   a coordination cost (work distribution and termination detection). *)
let cost_parallel (cm : Cost_model.t) (stats : scavenge_stats) ~workers =
  if workers <= 1 then cost cm stats
  else begin
    let copy_work =
      cm.scavenge_per_word * (stats.survivor_words + stats.tenured_words)
    in
    let serial =
      cm.scavenge_base
      + (cm.scavenge_per_remembered * stats.remembered_scanned)
    in
    serial + (copy_work / workers) + (workers * 400)
  end
