(* Tests for the bytecode set, assembler and disassembler. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_ops = [
  Opcode.Push_receiver;
  Opcode.Push_temp 3;
  Opcode.Push_ivar 12;
  Opcode.Push_literal 7;
  Opcode.Push_nil;
  Opcode.Push_true;
  Opcode.Push_false;
  Opcode.Push_smallint 1234;
  Opcode.Push_smallint (-1234);
  Opcode.Push_global 2;
  Opcode.Push_block { nargs = 2; arg_start = 5; body_len = 9 };
  Opcode.Store_temp 4;
  Opcode.Store_ivar 1;
  Opcode.Store_global 0;
  Opcode.Pop;
  Opcode.Dup;
  Opcode.Send { selector = 11; nargs = 3 };
  Opcode.Super_send { selector = 0; nargs = 0 };
  Opcode.Jump 17;
  Opcode.Jump (-17);
  Opcode.Jump_if_true 4;
  Opcode.Jump_if_false (-4);
  Opcode.Return_top;
  Opcode.Return_receiver;
  Opcode.Block_return;
]

let test_roundtrip () =
  List.iter
    (fun op ->
      let decoded = Opcode.decode (Opcode.encode op) in
      check_bool (Format.asprintf "%a round-trips" Opcode.pp op) true
        (decoded = op))
    sample_ops

let roundtrip_prop =
  QCheck.Test.make ~name:"random operands round-trip" ~count:500
    QCheck.(triple (int_range 0 24) (int_range 0 1000) (int_range 0 30))
    (fun (kind, a, b) ->
      let op =
        match kind mod 8 with
        | 0 -> Opcode.Push_temp a
        | 1 -> Opcode.Push_smallint (a - 500)
        | 2 -> Opcode.Send { selector = a; nargs = b }
        | 3 -> Opcode.Jump (a - 500)
        | 4 -> Opcode.Jump_if_false (a - 500)
        | 5 -> Opcode.Push_block { nargs = b; arg_start = a mod 90; body_len = a }
        | 6 -> Opcode.Store_ivar a
        | _ -> Opcode.Push_literal a
      in
      Opcode.decode (Opcode.encode op) = op)

let test_stack_effect () =
  check "push is +1" 1 (Opcode.stack_effect Opcode.Push_nil);
  check "pop is -1" (-1) (Opcode.stack_effect Opcode.Pop);
  check "send pops args" (-2)
    (Opcode.stack_effect (Opcode.Send { selector = 0; nargs = 2 }));
  check "store leaves the value" 0 (Opcode.stack_effect (Opcode.Store_temp 0));
  check "conditional jump pops" (-1)
    (Opcode.stack_effect (Opcode.Jump_if_true 0))

let test_assembler_forward () =
  let asm = Assembler.create () in
  let l = Assembler.new_label asm in
  Assembler.emit asm Opcode.Push_true;
  Assembler.emit_jump asm `If_false l;
  Assembler.emit asm (Opcode.Push_smallint 1);
  Assembler.emit_jump asm `Jump l;
  Assembler.emit asm (Opcode.Push_smallint 2);
  Assembler.place_label asm l;
  Assembler.emit asm Opcode.Return_top;
  let code = Assembler.finish asm in
  (match Opcode.decode code.(1) with
   | Opcode.Jump_if_false off -> check "forward target" 5 (1 + 1 + off)
   | _ -> Alcotest.fail "expected Jump_if_false");
  (match Opcode.decode code.(3) with
   | Opcode.Jump off -> check "second jump same label" 5 (3 + 1 + off)
   | _ -> Alcotest.fail "expected Jump")

let test_assembler_backward () =
  let asm = Assembler.create () in
  let top = Assembler.new_label asm in
  Assembler.place_label asm top;
  Assembler.emit asm Opcode.Push_true;
  Assembler.emit_jump asm `Jump top;
  let code = Assembler.finish asm in
  (match Opcode.decode code.(1) with
   | Opcode.Jump off -> check "backward offset" 0 (1 + 1 + off)
   | _ -> Alcotest.fail "expected Jump")

let test_assembler_block () =
  let asm = Assembler.create () in
  let endl = Assembler.new_label asm in
  Assembler.emit_jump asm (`Block (2, 4)) endl;
  Assembler.emit asm Opcode.Push_nil;
  Assembler.emit asm Opcode.Block_return;
  Assembler.place_label asm endl;
  let code = Assembler.finish asm in
  (match Opcode.decode code.(0) with
   | Opcode.Push_block { nargs; arg_start; body_len } ->
       check "nargs" 2 nargs;
       check "arg_start" 4 arg_start;
       check "body length" 2 body_len
   | _ -> Alcotest.fail "expected Push_block")

let test_assembler_unplaced () =
  let asm = Assembler.create () in
  let l = Assembler.new_label asm in
  Assembler.emit_jump asm `Jump l;
  Alcotest.check_raises "unplaced label is refused"
    (Invalid_argument "Assembler.finish: unplaced label")
    (fun () -> ignore (Assembler.finish asm))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then false
    else if String.sub s i m = sub then true
    else go (i + 1)
  in
  go 0

let test_disasm_plain () =
  let code =
    Array.map Opcode.encode
      [| Opcode.Push_smallint 5;
         Opcode.Send { selector = 0; nargs = 1 };
         Opcode.Jump 1;
         Opcode.Push_nil;
         Opcode.Return_top |]
  in
  let text = Disasm.to_string ~literal:(fun _ -> "factorial") code in
  check_bool "selector rendered" true (contains text "factorial");
  check_bool "jump target rendered" true (contains text "jump -> 4")

let () =
  Alcotest.run "bytecode"
    [ ("opcode",
       [ Alcotest.test_case "round trip" `Quick test_roundtrip;
         Alcotest.test_case "stack effect" `Quick test_stack_effect;
         QCheck_alcotest.to_alcotest roundtrip_prop ]);
      ("assembler",
       [ Alcotest.test_case "forward labels" `Quick test_assembler_forward;
         Alcotest.test_case "backward labels" `Quick test_assembler_backward;
         Alcotest.test_case "block emission" `Quick test_assembler_block;
         Alcotest.test_case "unplaced label" `Quick test_assembler_unplaced ]);
      ("disasm",
       [ Alcotest.test_case "listing" `Quick test_disasm_plain ]) ]
