(* Tests for the interpreter: evaluation semantics end to end on a
   bootstrapped image (baseline configuration, uniform costs). *)

let vm = lazy (Vm.create (Config.testing ()))

let ev src = Vm.eval_to_string (Lazy.force vm) src

let check_eval name expected src = Alcotest.(check string) name expected (ev src)

let raises_vm_error src () =
  Alcotest.(check bool) ("raises: " ^ src) true
    (try ignore (ev src); false with
     | State.Vm_error _ | Interp.Does_not_understand _ | Interp.Must_be_boolean ->
         true)

(* --- arithmetic --- *)

let test_arithmetic () =
  check_eval "add" "7" "3 + 4";
  check_eval "subtract" "-1" "3 - 4";
  check_eval "multiply" "12" "3 * 4";
  check_eval "floor division" "-2" "-7 // 4";
  check_eval "floor modulo" "1" "-7 \\\\ 4";
  check_eval "quotient" "-1" "-7 / 4";
  check_eval "bitAnd" "4" "12 bitAnd: 6";
  check_eval "bitOr" "14" "12 bitOr: 6";
  check_eval "bitXor" "10" "12 bitXor: 6";
  check_eval "bitShift left" "48" "12 bitShift: 2";
  check_eval "bitShift right" "3" "12 bitShift: -2";
  check_eval "comparison chain" "true" "1 < 2 and: [2 <= 2 and: [3 > 2]]";
  check_eval "max" "9" "4 max: 9";
  check_eval "abs" "5" "-5 abs";
  check_eval "negated" "-3" "3 negated";
  check_eval "gcd" "6" "54 gcd: 24";
  check_eval "factorial" "479001600" "12 factorial";
  check_eval "even odd" "true" "4 even and: [3 odd]"

let test_floats () =
  check_eval "float add" "3.5" "1.25 + 2.25";
  check_eval "mixed add" "3.5" "1 + 2.5";
  check_eval "float multiply" "7.5" "2.5 * 3";
  check_eval "float compare" "true" "1.5 < 2";
  check_eval "truncated" "3" "3.9 truncated";
  check_eval "rounded" "4" "3.9 rounded";
  check_eval "asFloat" "1" "2 asFloat printString size"

let test_integer_printing () =
  check_eval "zero" "'0'" "0 printString";
  check_eval "positive" "'12345'" "12345 printString";
  check_eval "negative" "'-42'" "-42 printString";
  check_eval "radix" "'FF'" "(255 printStringRadix: 16)"

(* --- objects, identity, equality --- *)

let test_identity () =
  check_eval "identical ints" "true" "3 == 3";
  check_eval "symbols interned" "true" "#foo == #foo";
  check_eval "strings not identical" "false" "'ab' == 'ab'";
  check_eval "strings equal" "true" "'ab' = 'ab'";
  check_eval "string/symbol distinct" "true" "('ab' == 'ab' asSymbol) not";
  check_eval "nil isNil" "true" "nil isNil";
  check_eval "object notNil" "true" "3 notNil";
  check_eval "ifNil on nil" "5" "nil ifNil: [5]";
  check_eval "ifNil on object" "3" "3 ifNil: [5]"

let test_classes () =
  check_eval "class of int" "SmallInteger" "3 class";
  check_eval "class of string" "String" "'x' class";
  check_eval "class of class" "Class" "Array class";
  check_eval "superclass chain" "Number" "Integer superclass";
  check_eval "isKindOf" "true" "3 isKindOf: Magnitude";
  check_eval "isKindOf false" "false" "3 isKindOf: Collection";
  check_eval "isMemberOf" "true" "3 isMemberOf: SmallInteger";
  check_eval "respondsTo" "true" "3 respondsTo: #factorial";
  check_eval "respondsTo false" "false" "3 respondsTo: #zork";
  check_eval "inheritsFrom" "true" "SmallInteger inheritsFrom: Object"

let test_instantiation () =
  check_eval "new instance has nil ivars" "true" "Point new x isNil";
  check_eval "point accessors" "'3@4'" "(Point x: 3 y: 4) printString";
  check_eval "point arithmetic" "'4@6'"
    "((Point x: 1 y: 2) + (Point x: 3 y: 4)) printString";
  check_eval "ivars via instVarAt:" "3" "(Point x: 3 y: 4) instVarAt: 1";
  check_eval "copy is shallow" "'3@9'"
    "| p q | p := Point x: 3 y: 4. q := p copy. q instVarAt: 2 put: 9. p instVarAt: 2 put: 4. q printString"

(* --- blocks and control flow --- *)

let test_blocks () =
  check_eval "value" "7" "[7] value";
  check_eval "value:" "8" "[:x | x + 1] value: 7";
  check_eval "two args" "12" "[:x :y | x * y] value: 3 value: 4";
  check_eval "three args" "6" "[:x :y :z | x + y + z] value: 1 value: 2 value: 3";
  check_eval "closure over temp" "15"
    "| a | a := 5. [:x | x + a] value: 10";
  check_eval "block mutates home temp" "6"
    "| a | a := 5. [a := a + 1] value. a";
  check_eval "block stored and reused" "10"
    "| b | b := [:x | x + 1]. (b value: 3) + (b value: 5)";
  check_eval "numArgs" "2" "[:x :y | x] numArgs";
  check_eval "dynamic whileTrue:" "10"
    "| i b | i := 0. b := [i < 10]. b whileTrue: [i := i + 1]. i"

let test_nonlocal_return () =
  (* detect: uses ^ inside a do: block *)
  check_eval "nonlocal return through do:" "4"
    "#(1 3 4 5) detect: [:x | x even]";
  check_eval "includes via nonlocal return" "true" "#(1 2 3) includes: 2"

let test_early_exit () =
  let vm = Lazy.force vm in
  Vm.load_classes vm
    {st|
CLASS EarlyExit SUPER Object
METHODS EarlyExit
find: n
    1 to: 100 do: [:i | i = n ifTrue: [^'found']].
    ^'missing'
!
|st};
  Alcotest.(check string) "early exit" "'found'" (ev "EarlyExit new find: 7");
  Alcotest.(check string) "fall through" "'missing'" (ev "EarlyExit new find: 200")

let test_conditionals () =
  check_eval "ifTrue taken" "1" "true ifTrue: [1]";
  check_eval "ifTrue skipped" "nil" "false ifTrue: [1]";
  check_eval "ifFalse" "2" "false ifFalse: [2]";
  check_eval "two-armed" "'yes'" "(3 < 4) ifTrue: ['yes'] ifFalse: ['no']";
  check_eval "ifFalse:ifTrue:" "'yes'" "(3 < 4) ifFalse: ['no'] ifTrue: ['yes']";
  check_eval "and short-circuits" "false" "false and: [1 zork]";
  check_eval "or short-circuits" "true" "true or: [1 zork]";
  check_eval "dynamic boolean send" "1" "| b | b := true. b ifTrue: [1] ifFalse: [2]"

let test_loops () =
  check_eval "whileTrue" "10" "| i | i := 0. [i < 10] whileTrue: [i := i + 1]. i";
  check_eval "whileFalse" "10" "| i | i := 0. [i >= 10] whileFalse: [i := i + 1]. i";
  check_eval "to:do:" "5050" "| s | s := 0. 1 to: 100 do: [:i | s := s + i]. s";
  check_eval "to:by:do: down" "2500"
    "| s | s := 0. 99 to: 1 by: -2 do: [:i | s := s + i]. s";
  check_eval "to:do: value is nil (documented deviation)" "nil"
    "1 to: 3 do: [:i | i]";
  check_eval "timesRepeat:" "8" "| n | n := 1. 3 timesRepeat: [n := n * 2]. n";
  check_eval "nested loops" "36"
    "| s | s := 0. 1 to: 3 do: [:i | 1 to: 3 do: [:j | s := s + (i * j)]]. s";
  check_eval "dynamic to:do: via Interval" "6"
    "| s | s := 0. (1 to: 3) do: [:i | s := s + i]. s"

(* --- strings and collections --- *)

let test_strings () =
  check_eval "concat" "'ab cd'" "'ab' , ' ' , 'cd'";
  check_eval "size" "5" "'hello' size";
  check_eval "at:" "$e" "'hello' at: 2";
  check_eval "at:put:" "'hallo'" "| s | s := 'hello' copy. s at: 2 put: $a. s";
  check_eval "comparison" "true" "'abc' < 'abd'";
  check_eval "uppercase" "'HELLO'" "'hello' asUppercase";
  check_eval "copyFrom" "'ell'" "('hello' copyFrom: 2 to: 4)";
  check_eval "indexOf sub" "3" "'ababc' indexOfSubCollection: 'abc'";
  check_eval "includesSubstring" "false" "'ababc' includesSubstring: 'abd'";
  check_eval "startsWith" "true" "'hello' startsWith: 'hel'";
  check_eval "reversed" "'olleh'" "'hello' reversed";
  check_eval "symbol round trip" "#foo" "'foo' asSymbol";
  check_eval "symbol asString" "'foo'" "#foo asString";
  check_eval "string hash equal" "true" "'abc' hash = 'abc' copy hash"

let test_arrays () =
  check_eval "literal array" "3" "#(10 20 30) size";
  check_eval "at:" "20" "#(10 20 30) at: 2";
  check_eval "with:with:" "2" "(Array with: 1 with: 2) size";
  check_eval "new: filled with nil" "true" "(Array new: 3) first isNil";
  check_eval "indexOf" "2" "#(5 6 7) indexOf: 6";
  check_eval "collect into Array" "true"
    "(#(1 2 3) asArray collect: [:x | x * x]) includes: 9";
  check_eval "inject" "10" "#(1 2 3 4) inject: 0 into: [:a :b | a + b]";
  check_eval "select count" "2" "(#(1 2 3 4) select: [:x | x even]) size";
  check_eval "reject" "2" "(#(1 2 3 4) reject: [:x | x even]) size";
  check_eval "concatenation" "5" "(#(1 2) , #(3 4 5)) size";
  check_eval "nested literal arrays" "2" "(#(1 (2 3)) at: 2) size"

let test_ordered_collections () =
  check_eval "add and size" "3"
    "| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. c size";
  check_eval "addFirst" "9"
    "| c | c := OrderedCollection new. c add: 1. c addFirst: 9. c first";
  check_eval "removeFirst" "1"
    "| c | c := OrderedCollection new. c add: 1; add: 2. c removeFirst";
  check_eval "removeLast" "2"
    "| c | c := OrderedCollection new. c add: 1; add: 2. c removeLast";
  check_eval "grows past capacity" "100"
    "| c | c := OrderedCollection new. 1 to: 100 do: [:i | c add: i]. c size";
  check_eval "remove:ifAbsent:" "2"
    "| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. c remove: 1 ifAbsent: [nil]. c size";
  check_eval "asArray" "3" "#(1 2 3) asOrderedCollection asArray size"

let test_dictionaries () =
  check_eval "at:put: and at:" "'one'"
    "| d | d := Dictionary new. d at: 1 put: 'one'. d at: 1";
  check_eval "at:ifAbsent:" "'none'"
    "| d | d := Dictionary new. d at: 9 ifAbsent: ['none']";
  check_eval "includesKey" "true"
    "| d | d := Dictionary new. d at: #k put: 2. d includesKey: #k";
  check_eval "overwrite" "'two'"
    "| d | d := Dictionary new. d at: 1 put: 'one'. d at: 1 put: 'two'. d at: 1";
  check_eval "growth" "50"
    "| d | d := Dictionary new. 1 to: 50 do: [:i | d at: i put: i * i]. d size";
  check_eval "removeKey" "0"
    "| d | d := Dictionary new. d at: 1 put: 2. d removeKey: 1 ifAbsent: [nil]. d size";
  check_eval "string keys compare by value" "'v'"
    "| d | d := Dictionary new. d at: 'k' put: 'v'. d at: 'k' copy";
  check_eval "keys" "2"
    "| d | d := Dictionary new. d at: 1 put: 0. d at: 2 put: 0. d keys size"

let test_sets_intervals_streams () =
  check_eval "set deduplicates" "2"
    "| s | s := Set new. s add: 1; add: 2; add: 1. s size";
  check_eval "interval size" "10" "(1 to: 10) size";
  check_eval "interval by" "5" "(1 to: 9 by: 2) size";
  check_eval "interval collect" "true" "((1 to: 3) collect: [:x | x * 2]) includes: 6";
  check_eval "read stream" "3"
    "| rs | rs := ReadStream on: #(3 4 5). rs next";
  check_eval "read stream upTo" "'ab'"
    "| rs | rs := ReadStream on: 'ab cd'. rs upTo: $ ";
  check_eval "write stream" "'xy3'"
    "| ws | ws := WriteStream on: (String new: 2). ws nextPutAll: 'xy'. ws print: 3. ws contents"

(* --- cascades, associations, super --- *)

let test_cascade_eval () =
  check_eval "cascade returns last" "2"
    "| c | c := OrderedCollection new. c add: 1; add: 2; size";
  check_eval "association" "'#a -> 2'" "(#a -> 2) printString"

let test_super () =
  let vm = Lazy.force vm in
  Vm.load_classes vm
    {st|
CLASS SuperBase SUPER Object
METHODS SuperBase
describe
    ^'base'
!
greet
    ^'hello ' , self describe
!
CLASS SuperSub SUPER SuperBase
METHODS SuperSub
describe
    ^'sub(' , super describe , ')'
!
CLASSMETHODS SuperSub
build
    ^super new
!
|st};
  Alcotest.(check string) "super chains" "'hello sub(base)'"
    (ev "SuperSub new greet");
  Alcotest.(check string) "class-side super" "'sub(base)'"
    (ev "SuperSub build describe")

(* --- errors --- *)

let test_errors () =
  raises_vm_error "1 zork" ();
  raises_vm_error "nil foo: 3" ();
  raises_vm_error "Object zork" ();
  raises_vm_error "#(1 2) at: 5" ();
  raises_vm_error "#(1 2) at: 0" ();
  raises_vm_error "1 // 0" ();
  raises_vm_error "3 ifTrue: [1]" ();     (* mustBeBoolean *)
  raises_vm_error "self error: 'boom'" ();
  raises_vm_error "[:x | x] value" ()     (* block arg count mismatch *)

let test_deep_recursion () =
  let vm = Lazy.force vm in
  Vm.load_classes vm
    {st|
CLASS DeepRec SUPER Object
METHODS DeepRec
depth: n
    n = 0 ifTrue: [^0].
    ^1 + (self depth: n - 1)
!
|st};
  Alcotest.(check string) "deep method recursion" "400" (ev "DeepRec new depth: 400")

let test_stats_visible () =
  let vm = Lazy.force vm in
  ignore (Vm.eval vm "1 to: 100 do: [:i | i printString]");
  let st = vm.Vm.states.(0) in
  Alcotest.(check bool) "sends counted" true (st.State.sends > 0);
  Alcotest.(check bool) "cache hits accumulate" true
    (Method_cache.hits st.State.mcache > Method_cache.misses st.State.mcache);
  Alcotest.(check bool) "free contexts get reused" true
    (Free_contexts.reuses st.State.free_ctxs > 0)

let () =
  Alcotest.run "interp"
    [ ("numbers",
       [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
         Alcotest.test_case "floats" `Quick test_floats;
         Alcotest.test_case "printing" `Quick test_integer_printing ]);
      ("objects",
       [ Alcotest.test_case "identity" `Quick test_identity;
         Alcotest.test_case "classes" `Quick test_classes;
         Alcotest.test_case "instantiation" `Quick test_instantiation ]);
      ("blocks",
       [ Alcotest.test_case "values" `Quick test_blocks;
         Alcotest.test_case "nonlocal return" `Quick test_nonlocal_return;
         Alcotest.test_case "early exit" `Quick test_early_exit;
         Alcotest.test_case "conditionals" `Quick test_conditionals;
         Alcotest.test_case "loops" `Quick test_loops ]);
      ("collections",
       [ Alcotest.test_case "strings" `Quick test_strings;
         Alcotest.test_case "arrays" `Quick test_arrays;
         Alcotest.test_case "ordered" `Quick test_ordered_collections;
         Alcotest.test_case "dictionaries" `Quick test_dictionaries;
         Alcotest.test_case "sets/intervals/streams" `Quick test_sets_intervals_streams ]);
      ("messages",
       [ Alcotest.test_case "cascades" `Quick test_cascade_eval;
         Alcotest.test_case "super" `Quick test_super;
         Alcotest.test_case "errors" `Quick test_errors;
         Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
         Alcotest.test_case "statistics" `Quick test_stats_visible ]) ]
