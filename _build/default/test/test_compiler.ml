(* Tests for the Smalltalk compiler: lexer, parser, code generation
   (including the inlined control-flow forms) and the decompiler. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- lexer --- *)

let toks src = Array.to_list (Lexer.tokenize src)

let test_lexer_basics () =
  (match toks "foo at: 3" with
   | [ Lexer.Ident "foo"; Lexer.Keyword "at:"; Lexer.Int 3; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "basic tokens");
  (match toks "x := y + -2" with
   | [ Lexer.Ident "x"; Lexer.Assign; Lexer.Ident "y"; Lexer.Binary "+";
       Lexer.Binary "-"; Lexer.Int 2; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "assignment and operators")

let test_lexer_literals () =
  (match toks "16rFF 2r101 3.5 1.5e2 $a 'it''s' #foo #at:put: #( 1 2 )" with
   | [ Lexer.Int 255; Lexer.Int 5; Lexer.Float f1; Lexer.Float f2;
       Lexer.Char 'a'; Lexer.Str "it's"; Lexer.Sym "foo"; Lexer.Sym "at:put:";
       Lexer.Hash_paren; Lexer.Int 1; Lexer.Int 2; Lexer.Rparen; Lexer.Eof ] ->
       Alcotest.(check (float 1e-9)) "float" 3.5 f1;
       Alcotest.(check (float 1e-9)) "exponent" 150.0 f2
   | _ -> Alcotest.fail "literal tokens")

let test_lexer_comments () =
  (match toks "1 \"a comment\" + 2" with
   | [ Lexer.Int 1; Lexer.Binary "+"; Lexer.Int 2; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "comments are skipped")

let test_lexer_binary_selectors () =
  (match toks "a <= b // c \\\\ d" with
   | [ Lexer.Ident "a"; Lexer.Binary "<="; Lexer.Ident "b"; Lexer.Binary "//";
       Lexer.Ident "c"; Lexer.Binary "\\\\"; Lexer.Ident "d"; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "two-char binary selectors")

let test_lexer_errors () =
  check_bool "unterminated string raises" true
    (try ignore (Lexer.tokenize "'abc"); false with Lexer.Error _ -> true);
  check_bool "bang is reserved" true
    (try ignore (Lexer.tokenize "a ! b"); false with Lexer.Error _ -> true)

(* --- parser --- *)

let parse_expr src =
  match (Parser.parse_do_it src).Ast.body with
  | [ Ast.Return e ] -> e
  | [ Ast.Expr e ] -> e
  | _ -> Alcotest.fail "expected a single expression"

let test_parser_precedence () =
  (* keyword < binary < unary *)
  match parse_expr "a foo: b bar + c baz" with
  | Ast.Message { selector = "foo:"; args = [ arg ]; _ } ->
      (match arg with
       | Ast.Message { selector = "+"; receiver = Ast.Message { selector = "bar"; _ }; args = [ Ast.Message { selector = "baz"; _ } ] } -> ()
       | _ -> Alcotest.fail "binary argument shape")
  | _ -> Alcotest.fail "keyword send shape"

let test_parser_multi_keyword () =
  match parse_expr "d at: 1 put: 2" with
  | Ast.Message { selector = "at:put:"; args = [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "multi-keyword selector glued"

let test_parser_cascade () =
  match parse_expr "ws nextPutAll: 'a'; tab; print: 3" with
  | Ast.Cascade { receiver = Ast.Var "ws"; messages } ->
      check "three messages" 3 (List.length messages);
      check_str "first" "nextPutAll:" (fst (List.nth messages 0));
      check_str "second" "tab" (fst (List.nth messages 1));
      check_str "third" "print:" (fst (List.nth messages 2))
  | _ -> Alcotest.fail "cascade shape"

let test_parser_block () =
  match parse_expr "[:x :y | | t | t := x + y. t]" with
  | Ast.Block { params = [ "x"; "y" ]; temps = [ "t" ]; body } ->
      check "two statements" 2 (List.length body)
  | _ -> Alcotest.fail "block shape"

let test_parser_method () =
  let m = Parser.parse_method "at: i put: v\n  <primitive: 61>\n  | t |\n  t := i.\n  ^v" in
  check_str "selector" "at:put:" m.Ast.selector;
  Alcotest.(check (list string)) "params" [ "i"; "v" ] m.Ast.params;
  Alcotest.(check (list string)) "temps" [ "t" ] m.Ast.temps;
  Alcotest.(check (option int)) "primitive" (Some 61) m.Ast.primitive;
  check "statements" 2 (List.length m.Ast.body)

let test_parser_negative_literal () =
  match parse_expr "-5" with
  | Ast.Lit (Ast.Lit_int (-5)) -> ()
  | _ -> Alcotest.fail "negative literal"

let test_parser_literal_array () =
  match parse_expr "#(1 $a 'x' sym at:put: (2 3) nil true)" with
  | Ast.Lit (Ast.Lit_array
      [ Ast.Lit_int 1; Ast.Lit_char 'a'; Ast.Lit_string "x";
        Ast.Lit_symbol "sym"; Ast.Lit_symbol "at:put:";
        Ast.Lit_array [ Ast.Lit_int 2; Ast.Lit_int 3 ];
        Ast.Lit_nil; Ast.Lit_true ]) -> ()
  | _ -> Alcotest.fail "literal array contents"

let test_parser_errors () =
  let fails src =
    try ignore (Parser.parse_do_it src); false with
    | Parser.Error _ | Lexer.Error _ -> true
  in
  check_bool "unclosed paren" true (fails "(1 + 2");
  check_bool "statements after return" true (fails "^1. 2");
  check_bool "missing cascade message" true (fails "a foo; ");
  check_bool "stray bracket" true (fails "]")

let test_parser_bar_binary () =
  match parse_expr "(a = 1) | (b = 2)" with
  | Ast.Message { selector = "|"; _ } -> ()
  | _ -> Alcotest.fail "'|' as a binary selector"

(* --- code generation (against a bootstrapped universe) --- *)

let vm = lazy (Vm.create (Config.testing ()))

let compile_do_it src =
  let vm = Lazy.force vm in
  Codegen.compile_do_it vm.Vm.u src

let decode_all vm meth =
  Method_mirror.bytecode_array vm.Vm.u meth

let count_sends code =
  Array.fold_left
    (fun n op -> match op with Opcode.Send _ | Opcode.Super_send _ -> n + 1 | _ -> n)
    0 code

let count_blocks code =
  Array.fold_left
    (fun n op -> match op with Opcode.Push_block _ -> n + 1 | _ -> n)
    0 code

let test_codegen_while_is_jumps () =
  (* the idle Process: no sends, no block contexts, no allocation *)
  let vm' = Lazy.force vm in
  let meth = compile_do_it "[true] whileTrue" in
  let code = decode_all vm' meth in
  check "no sends in [true] whileTrue" 0 (count_sends code);
  check "no block contexts either" 0 (count_blocks code)

let test_codegen_if_inlined () =
  let vm' = Lazy.force vm in
  let meth = compile_do_it "1 < 2 ifTrue: [3] ifFalse: [4]" in
  let code = decode_all vm' meth in
  check "only the comparison send remains" 1 (count_sends code);
  check_bool "conditional jump present" true
    (Array.exists (function Opcode.Jump_if_false _ -> true | _ -> false) code)

let test_codegen_to_do_inlined () =
  let vm' = Lazy.force vm in
  let meth = compile_do_it "1 to: 10 do: [:i | i]" in
  let code = decode_all vm' meth in
  check "loop compiles to <= and + only" 2 (count_sends code);
  check "no block context" 0 (count_blocks code)

let test_codegen_real_block () =
  let vm' = Lazy.force vm in
  let meth = compile_do_it "#(1 2) collect: [:x | x]" in
  let code = decode_all vm' meth in
  check "real block for a real send" 1 (count_blocks code)

let test_codegen_literal_dedupe () =
  let vm' = Lazy.force vm in
  let meth = compile_do_it "#foo == #foo" in
  (* literal table: #foo once plus the == selector *)
  check "duplicate literals shared" 2 (Method_mirror.literal_count vm'.Vm.u meth)

let test_codegen_undeclared () =
  check_bool "undeclared lowercase variable is an error" true
    (try ignore (compile_do_it "zork + 1"); false with Codegen.Error _ -> true)

let test_codegen_super_outside_class () =
  check_bool "super in a doIt is an error" true
    (try ignore (compile_do_it "super foo"); false with Codegen.Error _ -> true)

(* --- evaluation round-trips through the decompiler --- *)

let test_decompile_roundtrip () =
  let vm = Lazy.force vm in
  (* install, decompile, recompile the decompiled source, compare results *)
  Vm.load_classes vm
    {st|
CLASS DecompProbe SUPER Object IVARS acc
METHODS DecompProbe
sum: n
    | total |
    total := 0.
    1 to: n do: [:i |
        i even ifTrue: [total := total + i] ifFalse: [total := total - 1]].
    ^total
!
classify: n
    n < 0 ifTrue: [^'negative'].
    (n = 0 or: [n = 1]) ifTrue: [^'small'].
    ^'big'
!
|st};
  let probe sel arg = Printf.sprintf "(DecompProbe new %s: %d)" sel arg in
  let before =
    List.map (fun n -> Vm.eval_to_string vm (probe "sum" n)) [ 0; 5; 10 ]
    @ List.map (fun n -> Vm.eval_to_string vm (probe "classify" n)) [ -3; 1; 9 ]
  in
  (* decompile both methods and reinstall from the decompiled source *)
  List.iter
    (fun sel ->
      let src =
        Vm.eval vm
          (Printf.sprintf
             "(DecompProbe methodAt: #%s) decompile" sel)
      in
      let text = Heap.string_value vm.Vm.heap src in
      check_bool (sel ^ " decompiles to something") true (String.length text > 10);
      ignore
        (Vm.eval vm
           (Printf.sprintf "Mirror compile: '%s' into: DecompProbe classSide: false"
              (String.concat "''" (String.split_on_char '\'' text)))))
    [ "sum:"; "classify:" ];
  let after =
    List.map (fun n -> Vm.eval_to_string vm (probe "sum" n)) [ 0; 5; 10 ]
    @ List.map (fun n -> Vm.eval_to_string vm (probe "classify" n)) [ -3; 1; 9 ]
  in
  Alcotest.(check (list string)) "recompiled methods behave identically"
    before after

let test_decompile_kernel_methods () =
  (* every kernel instance method decompiles without crashing *)
  let vm = Lazy.force vm in
  let u = vm.Vm.u in
  let h = vm.Vm.heap in
  let failures = ref [] in
  let total = ref 0 in
  let class_c = u.Universe.classes.Universe.class_c in
  List.iter
    (fun name ->
      match Universe.find_class u name with
      | None -> ()
      | Some cls when not (Oop.equal (Universe.class_of u cls) class_c) -> ()
      | Some cls ->
          let dict = Heap.get h cls Layout.Class.method_dict in
          List.iter
            (fun sel ->
              incr total;
              match Class_builder.dict_find u dict sel with
              | None -> ()
              | Some meth ->
                  (try ignore (Method_mirror.decompile u meth) with
                   | Decompiler.Unsupported msg ->
                       failures :=
                         (name ^ ">>" ^ Universe.symbol_name u sel ^ ": " ^ msg)
                         :: !failures))
            (Class_builder.dict_selectors u dict))
    (Universe.global_names u);
  check_bool
    (Printf.sprintf "all %d kernel methods decompile (failures: %s)" !total
       (String.concat "; " !failures))
    true (!failures = []);
  check_bool "a meaningful number of methods was exercised" true (!total > 150)

let test_class_file_parse () =
  let items =
    Class_file.parse
      "CLASS A SUPER Object IVARS x y CATEGORY T\nMETHODS A\nfoo\n ^x\n!\nbar\n ^y\n!\nCLASSMETHODS A\nnew\n ^super new\n!\n"
  in
  check "three items" 3 (List.length items);
  (match List.nth items 0 with
   | Class_file.Class_decl d ->
       check_str "name" "A" d.Class_file.name;
       Alcotest.(check (option string)) "super" (Some "Object") d.Class_file.super;
       Alcotest.(check (list string)) "ivars" [ "x"; "y" ] d.Class_file.ivars
   | _ -> Alcotest.fail "expected class decl");
  (match List.nth items 1 with
   | Class_file.Methods g ->
       check "two chunks" 2 (List.length g.Class_file.methods);
       check_bool "instance side" true (not g.Class_file.class_side)
   | _ -> Alcotest.fail "expected methods");
  (match List.nth items 2 with
   | Class_file.Methods g -> check_bool "class side" true g.Class_file.class_side
   | _ -> Alcotest.fail "expected class methods")

let () =
  Alcotest.run "compiler"
    [ ("lexer",
       [ Alcotest.test_case "basics" `Quick test_lexer_basics;
         Alcotest.test_case "literals" `Quick test_lexer_literals;
         Alcotest.test_case "comments" `Quick test_lexer_comments;
         Alcotest.test_case "binary selectors" `Quick test_lexer_binary_selectors;
         Alcotest.test_case "errors" `Quick test_lexer_errors ]);
      ("parser",
       [ Alcotest.test_case "precedence" `Quick test_parser_precedence;
         Alcotest.test_case "multi keyword" `Quick test_parser_multi_keyword;
         Alcotest.test_case "cascade" `Quick test_parser_cascade;
         Alcotest.test_case "block" `Quick test_parser_block;
         Alcotest.test_case "method" `Quick test_parser_method;
         Alcotest.test_case "negative literal" `Quick test_parser_negative_literal;
         Alcotest.test_case "literal array" `Quick test_parser_literal_array;
         Alcotest.test_case "bar binary" `Quick test_parser_bar_binary;
         Alcotest.test_case "errors" `Quick test_parser_errors ]);
      ("codegen",
       [ Alcotest.test_case "whileTrue is jumps" `Quick test_codegen_while_is_jumps;
         Alcotest.test_case "if inlined" `Quick test_codegen_if_inlined;
         Alcotest.test_case "to:do: inlined" `Quick test_codegen_to_do_inlined;
         Alcotest.test_case "real blocks" `Quick test_codegen_real_block;
         Alcotest.test_case "literal dedupe" `Quick test_codegen_literal_dedupe;
         Alcotest.test_case "undeclared variable" `Quick test_codegen_undeclared;
         Alcotest.test_case "super outside class" `Quick test_codegen_super_outside_class ]);
      ("class_file",
       [ Alcotest.test_case "parse" `Quick test_class_file_parse ]);
      ("decompiler",
       [ Alcotest.test_case "roundtrip" `Quick test_decompile_roundtrip;
         Alcotest.test_case "kernel methods" `Quick test_decompile_kernel_methods ]) ]
