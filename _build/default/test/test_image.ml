(* Tests for the bootstrap image: the kernel class hierarchy, reflection,
   the programming-environment tools (browse, search, compile, decompile,
   inspect), and the I/O service objects. *)

let vm = lazy (Vm.create (Config.testing ()))
let ev src = Vm.eval_to_string (Lazy.force vm) src
let check_eval name expected src = Alcotest.(check string) name expected (ev src)
let check_bool = Alcotest.(check bool)

let test_kernel_classes_present () =
  List.iter
    (fun name ->
      check_bool (name ^ " exists") true
        (Universe.find_class (Lazy.force vm).Vm.u name <> None))
    [ "Object"; "UndefinedObject"; "Boolean"; "True"; "False"; "Magnitude";
      "Character"; "Number"; "Integer"; "SmallInteger"; "Float"; "Link";
      "Association"; "Collection"; "SequenceableCollection";
      "ArrayedCollection"; "Array"; "String"; "Symbol"; "Interval";
      "OrderedCollection"; "Dictionary"; "Set"; "Stream"; "ReadStream";
      "WriteStream"; "LinkedList"; "Semaphore"; "Process";
      "ProcessorScheduler"; "MethodContext"; "BlockContext"; "Class";
      "CompiledMethod"; "MethodDictionary"; "Mirror"; "TranscriptStream";
      "DisplayScreen"; "Inspector"; "Point" ]

let test_hierarchy_shape () =
  check_eval "Object has no superclass" "true" "Object superclass isNil";
  check_eval "SmallInteger < Integer" "Integer" "SmallInteger superclass";
  check_eval "Integer < Number < Magnitude" "Magnitude"
    "Integer superclass superclass";
  check_eval "Symbol < String" "String" "Symbol superclass";
  check_eval "Semaphore < LinkedList" "LinkedList" "Semaphore superclass";
  check_eval "Process < Link" "Link" "Process superclass";
  check_eval "subclasses computed" "true"
    "(Number subclasses includes: Integer)";
  check_eval "allSubclasses transitive" "true"
    "(Magnitude allSubclasses includes: SmallInteger)";
  check_eval "withAllSubclasses includes self" "true"
    "(Number withAllSubclasses includes: Number)"

let test_class_reflection () =
  check_eval "Point ivars" "2" "Point instSize";
  check_eval "ivar names" "'#x'" "Point ivarNames first printString";
  check_eval "selectors nonempty" "true" "Point selectors size > 3";
  check_eval "includesSelector" "true" "Point includesSelector: #x";
  check_eval "methodAt: finds" "true" "(Point methodAt: #x) notNil";
  check_eval "methodAt: misses" "true" "(Point methodAt: #zork) isNil";
  check_eval "method selector" "'#x'" "(Point methodAt: #x) selector printString";
  check_eval "method source kept" "true"
    "((Point methodAt: #x) source includesSubstring: 'x')";
  check_eval "method printString" "'Point>>x'"
    "(Point methodAt: #x) printString"

let test_all_classes () =
  check_eval "allClasses is rich" "true" "Mirror allClasses size > 30";
  check_eval "allClasses holds classes" "true"
    "Mirror allClasses allSatisfy: [:c | c isClass]"

let test_definition_string () =
  check_eval "definition mentions the superclass" "true"
    "(Point definitionString includesSubstring: 'Object subclass: #Point')";
  check_eval "definition mentions ivars" "true"
    "(Point definitionString includesSubstring: 'x y')"

let test_hierarchy_string () =
  check_eval "hierarchy lists subclasses indented" "true"
    "(Number hierarchyString includesSubstring: 'SmallInteger')";
  check_eval "hierarchy starts at the receiver" "true"
    "(Number hierarchyString startsWith: 'Number')"

let test_implementors_senders () =
  check_eval "implementors of printString include Integer" "true"
    "((Mirror implementorsOf: #printString) includes: Integer)";
  check_eval "implementors of zork are none" "0"
    "(Mirror implementorsOf: #zork) size";
  check_eval "senders of signal: found" "true"
    "(Mirror sendersOf: #signal) size > 0";
  check_eval "sendersOf finds factorial's recursion" "true"
    "((Mirror sendersOf: #factorial) collect: [:a | a key]) includes: Integer"

let test_runtime_compile () =
  let vm' = Lazy.force vm in
  Vm.load_classes vm' "CLASS Scratch SUPER Object IVARS v\n";
  check_eval "compile a method at runtime" "'ok'"
    "Mirror compile: 'probe ^''ok''' into: Scratch classSide: false. Scratch new probe";
  check_eval "recompile replaces" "'two'"
    "Mirror compile: 'probe ^''two''' into: Scratch classSide: false. Scratch new probe";
  check_eval "class-side compile" "7"
    "Mirror compile: 'seven ^7' into: Scratch classSide: true. Scratch seven";
  check_eval "compiled methods appear in selectors" "true"
    "Scratch selectors includes: #probe"

let test_runtime_compile_many () =
  let vm' = Lazy.force vm in
  Vm.load_classes vm' "CLASS Scratch2 SUPER Object\n";
  (* grow the method dictionary past its initial capacity *)
  check_eval "dictionary growth" "20"
    {st|
| n |
1 to: 20 do: [:i |
    Mirror compile: 'm' , i printString , ' ^' , i printString
           into: Scratch2 classSide: false].
n := 0.
1 to: 20 do: [:i | n := n + 1].
Scratch2 selectors size
|st}

let test_decompile_tool () =
  check_eval "decompile produces source" "true"
    "((Point methodAt: #x) decompile includesSubstring: '^')";
  check_eval "decompiled selector heads the text" "true"
    "((Integer methodAt: #factorial) decompile startsWith: 'factorial')"

let test_inspector () =
  check_eval "inspector collects fields" "3"
    "(Inspector on: (Point x: 1 y: 2)) fieldCount";
  check_eval "inspector labels" "'x'"
    "(Inspector on: (Point x: 1 y: 2)) labels at: 2";
  check_eval "indexable fields listed" "true"
    "(Inspector on: #(9 8 7)) fieldCount = 4"

let test_transcript () =
  let vm' = Lazy.force vm in
  Buffer.clear Primitives.transcript;
  ignore (Vm.eval vm' "Transcript show: 'hello'; show: ' world'");
  Alcotest.(check string) "transcript captured" "hello world"
    (Vm.transcript vm')

let test_display () =
  let vm' = Lazy.force vm in
  let before = Devices.display_commands vm'.Vm.shared.State.display in
  ignore (Vm.eval vm' "1 to: 5 do: [:i | Display drawCommand: i]");
  Alcotest.(check int) "display commands flowed" (before + 5)
    (Devices.display_commands vm'.Vm.shared.State.display)

let test_contexts_visible () =
  (* the exposure the paper worries about: contexts and the scheduler are
     plain objects *)
  check_eval "a block is a BlockContext" "BlockContext" "[1] class";
  check_eval "block home method is a CompiledMethod" "true"
    "[1] method class == CompiledMethod";
  check_eval "scheduler is an object" "ProcessorScheduler" "Processor class"

let test_character_table () =
  check_eval "characters are unique" "true" "(65 asCharacter) == $A";
  check_eval "character value" "97" "$a asInteger";
  check_eval "character class method" "$z" "Character value: 122";
  check_eval "case conversion" "$A" "$a asUppercase";
  check_eval "isVowel" "true" "$e isVowel";
  check_eval "isDigit" "false" "$e isDigit"

let () =
  Alcotest.run "image"
    [ ("kernel",
       [ Alcotest.test_case "classes present" `Quick test_kernel_classes_present;
         Alcotest.test_case "hierarchy" `Quick test_hierarchy_shape;
         Alcotest.test_case "characters" `Quick test_character_table ]);
      ("reflection",
       [ Alcotest.test_case "class reflection" `Quick test_class_reflection;
         Alcotest.test_case "allClasses" `Quick test_all_classes;
         Alcotest.test_case "contexts visible" `Quick test_contexts_visible ]);
      ("tools",
       [ Alcotest.test_case "definitions" `Quick test_definition_string;
         Alcotest.test_case "hierarchy printing" `Quick test_hierarchy_string;
         Alcotest.test_case "implementors/senders" `Quick test_implementors_senders;
         Alcotest.test_case "runtime compile" `Quick test_runtime_compile;
         Alcotest.test_case "dictionary growth" `Quick test_runtime_compile_many;
         Alcotest.test_case "decompile" `Quick test_decompile_tool;
         Alcotest.test_case "inspector" `Quick test_inspector ]);
      ("io",
       [ Alcotest.test_case "transcript" `Quick test_transcript;
         Alcotest.test_case "display" `Quick test_display ]) ]
