(* Broad protocol coverage for the kernel image: one small assertion per
   behaviour, grouped by class family.  These complement the semantic
   tests in test_interp.ml by sweeping the long tail of the protocol. *)

let vm = lazy (Vm.create (Config.testing ()))
let ev src = Vm.eval_to_string (Lazy.force vm) src
let check name expected src = Alcotest.(check string) name expected (ev src)

let test_object_protocol () =
  check "yourself" "3" "3 yourself";
  check "->" "7" "(#k -> 7) value";
  check "association key" "#k" "(#k -> 7) key";
  check "species default" "Point" "(Point x: 1 y: 2) species";
  check "isNumber" "true" "3 isNumber";
  check "isNumber string" "false" "'x' isNumber";
  check "isSymbol" "true" "#x isSymbol";
  check "isString on symbol" "true" "#x isString";
  check "isClass" "true" "Object isClass";
  check "ifNotNil:" "4" "3 ifNotNil: [:v | v + 1]";
  check "xor" "true" "true xor: false";
  check "boolean and op" "false" "true & false";
  check "boolean or op" "true" "false | true"

let test_number_protocol () =
  check "between" "true" "5 between: 1 and: 9";
  check "not between" "false" "15 between: 1 and: 9";
  check "sign positive" "1" "9 sign";
  check "sign negative" "-1" "-9 sign";
  check "sign zero" "0" "0 sign";
  check "squared" "49" "7 squared";
  check "isZero" "true" "0 isZero";
  check "quo rounds toward zero" "-1" "-5 / 3";
  check "floor div rounds down" "-2" "-5 // 3";
  check "min:" "2" "7 min: 2";
  check "asCharacter" "$A" "65 asCharacter";
  check "float mixed compare" "true" "3 < 3.5";
  check "float printString" "'2.5'" "2.5 printString";
  check "float negative" "-3" "(0 - 3.5) truncated";
  check "interval asArray" "3" "(2 to: 6 by: 2) asArray size";
  check "interval last" "6" "(2 to: 6 by: 2) last";
  check "interval backwards empty" "0" "(5 to: 1) size"

let test_character_protocol () =
  check "char comparison" "true" "$a < $b";
  check "char isLetter" "true" "$q isLetter";
  check "char isLetter digit" "false" "$7 isLetter";
  check "char isDigit" "true" "$7 isDigit";
  check "char isSeparator" "true" "(Character value: 9) isSeparator";
  check "char asString" "'z'" "$z asString";
  check "char printString" "'$z'" "$z printString"

let test_string_protocol () =
  check "asLowercase" "'abc'" "'ABC' asLowercase";
  check "occurrencesOf" "2" "'banana' occurrencesOf: $n";
  check "indexOf" "3" "'banana' indexOf: $n";
  check "string le" "true" "'abc' <= 'abc'";
  check "empty compare" "true" "'' < 'a'";
  check "copy independence" "'xbc'"
    "| a b | a := 'abc'. b := a copy. b at: 1 put: $x. b";
  check "copy leaves original" "'abc'"
    "| a b | a := 'abc'. b := a copy. b at: 1 put: $x. a";
  check "symbol species copy is a String" "String" "#hello copy class";
  check "displayString has no quotes" "'x'" "'x' displayString"

let test_collection_protocol () =
  check "detect" "4" "#(1 3 4) detect: [:x | x even]";
  check "detect ifNone" "-1" "#(1 3 5) detect: [:x | x even] ifNone: [-1]";
  check "anySatisfy" "true" "#(1 2 3) anySatisfy: [:x | x > 2]";
  check "allSatisfy" "false" "#(1 2 3) allSatisfy: [:x | x > 2]";
  check "count:" "2" "#(1 2 3 4) count: [:x | x > 2]";
  check "reverseDo order" "'321'"
    "| ws | ws := WriteStream on: (String new: 3). #(1 2 3) reverseDo: [:e | ws print: e]. ws contents";
  check "with:do:" "14" "| s | s := 0. #(1 2 3) with: #(1 2 3) do: [:a :b | s := s + (a * b)]. s";
  check "doWithIndex" "14"
    "| s | s := 0. #(4 5) doWithIndex: [:e :i | s := s + (e * i)]. s";
  check "collection displayString" "true"
    "#(1 2) printString startsWith: 'Array'";
  check "ordered collection first/last" "4"
    "| c | c := OrderedCollection new. c add: 1; add: 4. c last";
  check "set remove" "0"
    "| s | s := Set new. s add: 1. s remove: 1 ifAbsent: [nil]. s size";
  check "dictionary at:ifAbsentPut:" "2"
    "| d | d := Dictionary new. d at: 1 ifAbsentPut: [2]. d at: 1 ifAbsentPut: [9]. d at: 1";
  check "keysDo" "3"
    "| d n | d := Dictionary new. d at: 1 put: 0. d at: 2 put: 0. d at: 3 put: 0. n := 0. d keysDo: [:k | n := n + 1]. n"

let test_stream_protocol () =
  check "upToEnd" "'cde'"
    "| rs | rs := ReadStream on: 'abcde'. rs next. rs next. rs upToEnd";
  check "peek does not advance" "$a"
    "| rs | rs := ReadStream on: 'abc'. rs peek. rs peek. rs next";
  check "atEnd" "true" "| rs | rs := ReadStream on: ''. rs atEnd";
  check "next at end is nil" "nil" "| rs | rs := ReadStream on: ''. rs next";
  check "skip:" "$c" "| rs | rs := ReadStream on: 'abc'. rs skip: 2. rs next";
  check "write stream cr/tab" "4"
    "| ws | ws := WriteStream on: (String new: 2). ws nextPutAll: 'ab'; cr; tab. ws contents size";
  check "display:" "'3'"
    "| ws | ws := WriteStream on: (String new: 2). ws display: 3. ws contents"

let test_shared_queue () =
  check "fifo order" "'abc'"
    {st|
| q ws |
q := SharedQueue new.
q nextPut: $a; nextPut: $b; nextPut: $c.
ws := WriteStream on: (String new: 3).
3 timesRepeat: [ws nextPut: q next].
ws contents
|st};
  check "size under protection" "2"
    "| q | q := SharedQueue new. q nextPut: 1; nextPut: 2. q size";
  check "peek" "7" "| q | q := SharedQueue new. q nextPut: 7. q peek";
  check "peek on empty" "nil" "SharedQueue new peek";
  check "blocking handoff between processes" "41"
    {st|
| q |
q := SharedQueue new.
[ (Delay forMilliseconds: 30) wait. q nextPut: 41 ] fork.
q next
|st}

let test_class_protocol () =
  check "allSuperclasses" "true"
    "(SmallInteger allSuperclasses includes: Object)";
  check "category" "'Kernel-Numbers'" "SmallInteger category";
  check "class printString" "'Symbol'" "Symbol printString";
  check "format of bytes class" "3" "String format";
  check "format of variable class" "1" "Array format";
  check "format of fixed class" "0" "Point format"

let () =
  Alcotest.run "kernel_protocol"
    [ ("object", [ Alcotest.test_case "object" `Quick test_object_protocol ]);
      ("numbers", [ Alcotest.test_case "numbers" `Quick test_number_protocol ]);
      ("characters", [ Alcotest.test_case "characters" `Quick test_character_protocol ]);
      ("strings", [ Alcotest.test_case "strings" `Quick test_string_protocol ]);
      ("collections", [ Alcotest.test_case "collections" `Quick test_collection_protocol ]);
      ("streams", [ Alcotest.test_case "streams" `Quick test_stream_protocol ]);
      ("shared_queue", [ Alcotest.test_case "shared queue" `Quick test_shared_queue ]);
      ("classes", [ Alcotest.test_case "classes" `Quick test_class_protocol ]) ]
